// Event-queue engines for the discrete-event core (see DESIGN.md §2.21).
//
// Events are slab-pooled, intrusively-linked EventNodes; the queue engines order them
// strictly by (time, seq) — seq is the global schedule order, so equal-time events pop
// FIFO. Two interchangeable engines implement the same compile-time interface:
//
//   HeapQueue     the reference engine: a binary heap of node pointers with lazy
//                 cancellation (a cancelled node stays in the heap, marked, and is
//                 reclaimed when it surfaces). Simple and obviously correct — the
//                 differential test in tests/sim_queue_test.cc races CalendarQueue
//                 against it.
//   CalendarQueue the hot-path engine (Brown 1988): an adaptive ring of "day" buckets,
//                 each a sorted intrusive list. Schedule and pop are O(1) amortized;
//                 cancel unlinks in O(1) via the node pointer. Bucket count and width
//                 adapt to the live event population.
//   DualQueue     both engines behind one runtime switch, so a whole Cluster/chaos run
//                 can be executed under either engine from a config knob while the
//                 pure engines stay available as template parameters for head-to-head
//                 benchmarks.
//
// Determinism contract: both engines dequeue in exactly (time, seq) order, so the
// simulation schedule — and therefore every event-log/journal/KV-history digest — is
// bit-identical regardless of engine. The equivalence suite enforces this.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"

namespace achilles {

// Which queue engine a Simulation (or a whole Cluster / chaos run) executes under.
enum class SimEngine : uint8_t {
  kCalendar,  // Calendar queue + pooled nodes (default, fast path).
  kHeap,      // Reference binary heap (equivalence runs, differential tests).
};

const char* SimEngineName(SimEngine engine);
bool SimEngineFromName(std::string_view name, SimEngine* out);

// Fixed-shape event callback: no allocation, no type erasure. The dominant events
// (message delivery, timer fire, drain start) all fit (obj, a, b).
using RawEventFn = void (*)(void* obj, uint64_t a, uint64_t b);

// One pending event. Lives in the EventPool's slabs for the simulation's lifetime and is
// recycled through a freelist; prev/next double as bucket links (calendar) and freelist
// links (pool). `gen` bumps every time the node logically dies (fires, is cancelled, or
// is recycled), which is what makes stale EventId handles safe no-ops.
struct EventNode {
  SimTime time = 0;
  uint64_t seq = 0;  // FIFO tie-break for equal times; globally increasing.
  uint64_t gen = 1;
  EventNode* prev = nullptr;
  EventNode* next = nullptr;
  uint32_t bucket = 0;      // Calendar bucket index (valid while linked).
  bool cancelled = false;   // Heap engine's lazy-removal marker.
  // Tagged callback: `raw` when set, else `*boxed` (generic std::function fallback).
  RawEventFn raw = nullptr;
  void* obj = nullptr;
  uint64_t a = 0;
  uint64_t b = 0;
  std::function<void()>* boxed = nullptr;
};

// Slab allocator for EventNodes. Slabs are never returned to the OS until the pool dies,
// so a recycled node's address stays valid — EventId handles dangle safely and the `gen`
// check rejects them.
class EventPool {
 public:
  EventPool() = default;
  ~EventPool();

  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* Alloc();
  void Free(EventNode* n);

  size_t live() const { return live_; }
  size_t high_water() const { return high_water_; }
  size_t slabs() const { return slabs_.size(); }
  size_t capacity() const { return slabs_.size() * kSlabSize; }

 private:
  static constexpr size_t kSlabSize = 256;

  std::vector<std::unique_ptr<EventNode[]>> slabs_;
  EventNode* free_ = nullptr;
  size_t live_ = 0;
  size_t high_water_ = 0;
};

// Reference engine: binary heap ordered by (time, seq), lazy cancellation.
class HeapQueue {
 public:
  explicit HeapQueue(SimEngine = SimEngine::kHeap) {}

  void Push(EventNode* n);
  // Earliest live node, or nullptr when empty. Reclaims cancelled nodes that surface.
  EventNode* PeekEarliest(EventPool& pool);
  EventNode* PopEarliest(EventPool& pool);
  // O(1) logical removal: the node is marked and reclaimed when it reaches the top. The
  // generation bump invalidates outstanding handles immediately — matching the calendar
  // engine, which frees on Remove — so double-cancel is a no-op on both engines.
  void Remove(EventNode* n, EventPool&) {
    n->cancelled = true;
    ++n->gen;
  }

 private:
  static bool Earlier(const EventNode* x, const EventNode* y) {
    return x->time != y->time ? x->time < y->time : x->seq < y->seq;
  }
  void PopRoot();

  std::vector<EventNode*> heap_;
};

// Hot-path engine: adaptive calendar queue. Buckets partition virtual time into "days"
// of `width_` ns; day d maps to bucket d % nbuckets, so one pass over the ring is one
// "year". Each bucket is a (time, seq)-sorted intrusive list; new events carry globally
// increasing seq, so the common case appends at the tail in O(1) even for bursts at a
// single tick. The dequeue cursor sweeps days; a full fruitless year falls back to a
// direct min-scan over bucket heads (events far in the future), which also re-aims the
// cursor. Bucket count doubles/halves with the live population and the day width is
// re-estimated from the earliest events at every resize.
class CalendarQueue {
 public:
  explicit CalendarQueue(SimEngine = SimEngine::kCalendar);

  void Push(EventNode* n);
  EventNode* PeekEarliest(EventPool& pool);
  EventNode* PopEarliest(EventPool& pool);
  // O(1) unlink via the node's intrusive links; the slot recycles immediately.
  void Remove(EventNode* n, EventPool& pool);

  size_t size() const { return size_; }
  uint64_t resizes() const { return resizes_; }

 private:
  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  static constexpr size_t kMinBuckets = 16;

  uint64_t DayOf(SimTime t) const {
    return static_cast<uint64_t>(t) / static_cast<uint64_t>(width_);
  }
  void InsertNode(EventNode* n);
  void Unlink(EventNode* n);
  void Resize(size_t nbuckets);
  SimDuration EstimateWidth(const std::vector<EventNode*>& sorted) const;

  std::vector<Bucket> buckets_;
  uint64_t mask_ = kMinBuckets - 1;
  SimDuration width_ = Us(1);
  uint64_t cur_day_ = 0;
  size_t size_ = 0;
  uint64_t resizes_ = 0;
};

// Runtime-selected engine: the one the production Simulation alias uses, so benches,
// clusters, and chaos runs can flip engines from a config knob. The branch per op is
// perfectly predicted (the engine never changes mid-run) and costs nothing measurable
// next to the queue work itself.
class DualQueue {
 public:
  explicit DualQueue(SimEngine engine) : engine_(engine) {}

  SimEngine engine() const { return engine_; }

  void Push(EventNode* n) {
    if (engine_ == SimEngine::kCalendar) {
      calendar_.Push(n);
    } else {
      heap_.Push(n);
    }
  }
  EventNode* PeekEarliest(EventPool& pool) {
    return engine_ == SimEngine::kCalendar ? calendar_.PeekEarliest(pool)
                                           : heap_.PeekEarliest(pool);
  }
  EventNode* PopEarliest(EventPool& pool) {
    return engine_ == SimEngine::kCalendar ? calendar_.PopEarliest(pool)
                                           : heap_.PopEarliest(pool);
  }
  void Remove(EventNode* n, EventPool& pool) {
    if (engine_ == SimEngine::kCalendar) {
      calendar_.Remove(n, pool);
    } else {
      heap_.Remove(n, pool);
    }
  }

 private:
  SimEngine engine_;
  CalendarQueue calendar_;
  HeapQueue heap_;
};

}  // namespace achilles

#endif  // SRC_SIM_EVENT_QUEUE_H_
