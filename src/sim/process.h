// Interface between the simulator and application code (replicas, clients).
#ifndef SRC_SIM_PROCESS_H_
#define SRC_SIM_PROCESS_H_

#include <cstdint>
#include <memory>

namespace achilles {

// Base class for anything sent over the simulated network. WireSize drives the bandwidth
// model; actual payload bytes need not be materialized.
struct SimMessage {
  virtual ~SimMessage() = default;
  virtual size_t WireSize() const = 0;
  // Static label for trace spans (handler names in Perfetto); override per message type.
  virtual const char* TraceName() const { return "msg"; }
};

using MessageRef = std::shared_ptr<const SimMessage>;

// A process bound to a Host. Destroyed on crash; a fresh instance is bound on reboot.
class IProcess {
 public:
  virtual ~IProcess() = default;

  // Invoked once when the process is bound and the host is up.
  virtual void OnStart() {}

  // Invoked for each delivered message, on the host's CPU.
  virtual void OnMessage(uint32_t from, const MessageRef& msg) = 0;
};

}  // namespace achilles

#endif  // SRC_SIM_PROCESS_H_
