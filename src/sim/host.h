// A simulated machine: single-CPU work queue, timers, crash/reboot lifecycle. Handlers run
// to completion; CPU time charged during a handler delays everything queued behind it, which
// is what makes leaders saturate under load (Fig. 4's knee).
#ifndef SRC_SIM_HOST_H_
#define SRC_SIM_HOST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/sim/process.h"
#include "src/sim/simulation.h"

namespace achilles {

class Host {
 public:
  Host(Simulation* sim, uint32_t id);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  uint32_t id() const { return id_; }
  bool IsUp() const { return up_; }
  Simulation& sim() { return *sim_; }

  // Binds a process and starts it. The host must be up and process-less.
  void BindProcess(std::unique_ptr<IProcess> process);

  // Crashes the host: the process (and all its volatile state) is destroyed, queued work is
  // dropped, timers die. Pending network deliveries to this host are discarded on arrival.
  void Crash();

  // Brings a crashed host back up with a fresh process after `init_delay` of virtual time
  // (models OS boot + enclave launch).
  void Reboot(std::unique_ptr<IProcess> process, SimDuration init_delay);

  // Network entry point: schedules message processing at `arrival`, subject to CPU queueing.
  void DeliverAt(SimTime arrival, uint32_t from, MessageRef msg);

  // --- Callable from inside a handler running on this host ---

  // Charges `d` of CPU time to the current handler. Everything the handler sends afterwards
  // departs after the charge; queued work starts after the handler's total charge.
  void ChargeCpu(SimDuration d);

  // Virtual time as seen by the running handler (sim time + charges so far).
  SimTime LocalNow() const;

  // One-shot timer. Fires on this host's CPU; dies if the host crashes first.
  uint64_t SetTimer(SimDuration delay, std::function<void()> fn);
  void CancelTimer(uint64_t timer_id);

  // Total CPU time this host has charged (for utilization reporting).
  SimDuration cpu_time_used() const { return cpu_used_; }

 private:
  struct Work {
    std::function<void()> fn;
  };

  void Enqueue(std::function<void()> fn);
  void ScheduleDrain();
  void DrainOne();

  Simulation* sim_;
  uint32_t id_;
  bool up_ = false;
  uint64_t epoch_ = 0;  // Incremented on crash; stale events check it.
  std::unique_ptr<IProcess> process_;

  std::deque<Work> queue_;
  bool drain_pending_ = false;
  SimTime cpu_free_at_ = 0;
  bool in_handler_ = false;
  SimDuration handler_charge_ = 0;
  SimDuration cpu_used_ = 0;

  uint64_t next_timer_id_ = 1;
  // Timer ids map to simulation events; epoch guards invalidate them on crash.
  std::unordered_map<uint64_t, EventId> timers_;
};

}  // namespace achilles

#endif  // SRC_SIM_HOST_H_
