// A simulated machine: single-CPU work queue, timers, crash/reboot lifecycle. Handlers run
// to completion; CPU time charged during a handler delays everything queued behind it, which
// is what makes leaders saturate under load (Fig. 4's knee).
//
// Hot-path note (DESIGN.md §2.21): the four dominant event shapes — message delivery,
// timer fire, drain start, process start — schedule through the simulator's raw
// (function-pointer) events, and message deliveries park their payload in a slab-pooled
// Delivery record, so steady-state traffic allocates no std::function closures at all.
// Only rare control events (reboot completion) use the boxed fallback.
//
// Observability: every CPU charge carries an obs::Component tag and every queued handler
// carries the obs::Path of the causal chain that triggered it, so committed-block latency
// can be attributed without touching virtual time (see src/obs/breakdown.h). An optional
// SpanTracer records one span per handler, parent-linked across hosts.
#ifndef SRC_SIM_HOST_H_
#define SRC_SIM_HOST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/obs/breakdown.h"
#include "src/obs/critpath.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/process.h"
#include "src/sim/simulation.h"

namespace achilles {

class Host {
 public:
  Host(Simulation* sim, uint32_t id);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  uint32_t id() const { return id_; }
  bool IsUp() const { return up_; }
  Simulation& sim() { return *sim_; }

  // Binds a process and starts it. The host must be up and process-less.
  void BindProcess(std::unique_ptr<IProcess> process);

  // Crashes the host: the process (and all its volatile state) is destroyed, queued work is
  // dropped, timers die. Pending network deliveries to this host are discarded on arrival.
  void Crash();

  // Brings a crashed host back up with a fresh process after `init_delay` of virtual time
  // (models OS boot + enclave launch).
  void Reboot(std::unique_ptr<IProcess> process, SimDuration init_delay);

  // Scripted fault hook: freezes this host's CPU for `d` (a GC pause / scheduling stall).
  // Queued work and later arrivals drain only after the stall. No-op while down.
  void InjectStall(SimDuration d);

  // Lifecycle tap for the chaos harness: invoked with "boot" when a process is bound (both
  // genesis and post-reboot, before its OnStart runs) and "crash" when the host goes down.
  // Observability + scripted-fault timing only; must not destroy the host.
  using LifecycleListener = std::function<void(uint32_t host_id, const char* event)>;
  void SetLifecycleListener(LifecycleListener listener) {
    lifecycle_ = std::move(listener);
  }

  // Network entry point: schedules message processing at `arrival`, subject to CPU queueing.
  // `path` (optional) is the sender-side attribution chain, already extended to `arrival`.
  void DeliverAt(SimTime arrival, uint32_t from, MessageRef msg,
                 const obs::Path* path = nullptr);

  // --- Callable from inside a handler running on this host ---

  // Charges `d` of CPU time to the current handler. Everything the handler sends afterwards
  // departs after the charge; queued work starts after the handler's total charge.
  // The charge is attributed to `c` on the current path (default: generic CPU service).
  void ChargeCpu(SimDuration d) { ChargeCpuAs(obs::Component::kCpu, d); }
  void ChargeCpuAs(obs::Component c, SimDuration d);

  // Virtual time as seen by the running handler (sim time + charges so far).
  SimTime LocalNow() const;

  // One-shot timer. Fires on this host's CPU; dies if the host crashes first.
  uint64_t SetTimer(SimDuration delay, std::function<void()> fn);
  void CancelTimer(uint64_t timer_id);

  // Total CPU time this host has charged (for utilization reporting).
  SimDuration cpu_time_used() const { return cpu_used_; }

  // --- Observability (all zero-cost in virtual time) ---
  // The attribution path of the running handler. Outside a handler this is a stale copy;
  // use SendPath() for snapshots.
  const obs::Path& current_path() const { return cur_path_; }
  // Snapshot a path for an outgoing message: the current handler's chain, or a fresh path
  // when called outside a handler (setup code, tests).
  obs::Path SendPath() const;
  // Restarts attribution at `origin` (a proposal point); time already spent in the handler
  // since `origin` is booked as CPU so the invariant holds.
  void RestartPathAt(SimTime origin);
  // Span id of the running handler (parent for nested protocol spans); 0 when untraced.
  uint64_t current_span() const { return cur_path_.span; }

  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }
  obs::SpanTracer* tracer() const { return tracer_; }
  // Flight recorder (src/obs/journal.h). Lifecycle, delivery, and TEE hooks record into it;
  // like the tracer, recording is memory-only and never perturbs virtual time.
  void set_journal(obs::Journal* journal) { journal_ = journal; }
  obs::Journal* journal() const { return journal_; }
  // Critical-path collector (src/obs/critpath.h): handler/origin activities register here
  // and ride in cur_path_.activity. Memory-only bookkeeping, zero virtual cost.
  void set_critpath(obs::CritPathCollector* critpath) { critpath_ = critpath; }
  obs::CritPathCollector* critpath() const { return critpath_; }
  // Critical-path activity of the running handler (0 = none / collection off).
  uint32_t current_activity() const { return cur_path_.activity; }
  // Journal seq of the event that caused the running handler (the deliver/send chain);
  // 0 outside a handler or when journaling is off. New records made by the handler use it
  // as their causal parent.
  uint64_t current_jparent() const { return cur_path_.jparent; }
  // Records a journal event on this host's track at LocalNow(), parented to the running
  // handler's causal context. Returns the seq (0 when journaling is off).
  uint64_t JournalEvent(obs::JournalKind kind, uint64_t a = 0, uint64_t b = 0,
                        std::string detail = {});
  // Registers this host's hot-path instruments (shared across hosts by metric name).
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  // What a queued handler does when the CPU reaches it. Only timers carry a closure;
  // steady-state message traffic is dispatched straight to the bound process.
  enum class WorkKind : uint8_t { kMessage, kTimer, kStart, kStall };

  struct Work {
    WorkKind kind;
    bool has_path = false;
    uint32_t from = 0;           // kMessage: sending host.
    MessageRef msg;              // kMessage.
    std::function<void()> fn;    // kTimer.
    SimDuration stall = 0;       // kStall.
    const char* name;            // Trace span label (static string).
    obs::Path path;
    uint64_t jctx = 0;  // Journal seq of the deliver event that queued this work.
  };

  // In-flight message: payload + attribution snapshot parked between the network's
  // DeliverAt and the arrival event, slab-pooled per host (next links the freelist).
  struct Delivery {
    MessageRef msg;
    obs::Path path;
    uint32_t from = 0;
    bool has_path = false;
    Delivery* next = nullptr;
  };

  // Raw event trampolines (fixed-shape, allocation-free; see simulation.h).
  static void DeliveryEvent(void* self, uint64_t record, uint64_t);
  static void TimerEvent(void* self, uint64_t timer_id, uint64_t epoch);
  static void DrainEvent(void* self, uint64_t epoch, uint64_t);
  static void StartEvent(void* self, uint64_t epoch, uint64_t);

  Delivery* AllocDelivery();
  void FreeDelivery(Delivery* d);
  void FinishDelivery(Delivery* d);
  void PushWork(Work&& work);
  void ScheduleDrain();
  void DrainOne();

  Simulation* sim_;
  uint32_t id_;
  bool up_ = false;
  uint64_t epoch_ = 0;  // Incremented on crash; stale events check it.
  std::unique_ptr<IProcess> process_;

  std::deque<Work> queue_;
  bool drain_pending_ = false;
  SimTime cpu_free_at_ = 0;
  bool in_handler_ = false;
  SimDuration handler_charge_ = 0;
  SimDuration cpu_used_ = 0;

  obs::Path cur_path_;
  LifecycleListener lifecycle_;
  obs::SpanTracer* tracer_ = nullptr;
  obs::Journal* journal_ = nullptr;
  obs::CritPathCollector* critpath_ = nullptr;
  obs::Histogram* handler_ns_ = nullptr;    // Per-handler CPU charge distribution.
  obs::Histogram* queue_wait_ns_ = nullptr; // Arrival -> handler-start wait distribution.

  std::vector<std::unique_ptr<Delivery[]>> delivery_slabs_;
  Delivery* delivery_free_ = nullptr;

  uint64_t next_timer_id_ = 1;
  struct Timer {
    EventId event;             // The pending raw fire event (cancelled on crash).
    std::function<void()> fn;  // Runs on this host's CPU when the event fires.
  };
  std::unordered_map<uint64_t, Timer> timers_;
};

}  // namespace achilles

#endif  // SRC_SIM_HOST_H_
