#include "src/sim/host.h"

#include "src/common/check.h"

namespace achilles {

namespace {
constexpr size_t kDeliverySlabSize = 64;
}  // namespace

Host::Host(Simulation* sim, uint32_t id) : sim_(sim), id_(id) {}

void Host::AttachMetrics(obs::MetricsRegistry* registry) {
  handler_ns_ = registry->GetHistogram("host.handler_ns");
  queue_wait_ns_ = registry->GetHistogram("host.queue_wait_ns");
}

uint64_t Host::JournalEvent(obs::JournalKind kind, uint64_t a, uint64_t b,
                            std::string detail) {
  if (journal_ == nullptr || !journal_->enabled()) {
    return 0;
  }
  return journal_->Record(id_, kind, LocalNow(), cur_path_.jparent, a, b,
                          std::move(detail));
}

void Host::BindProcess(std::unique_ptr<IProcess> process) {
  ACHILLES_CHECK(!process_);
  process_ = std::move(process);
  up_ = true;
  cpu_free_at_ = sim_->Now();
  if (journal_ != nullptr && journal_->enabled()) {
    journal_->Record(id_, obs::JournalKind::kBoot, sim_->Now(), 0, epoch_);
  }
  if (lifecycle_) {
    lifecycle_(id_, "boot");
  }
  sim_->ScheduleRawAfter(0, &Host::StartEvent, this, epoch_);
}

void Host::StartEvent(void* self, uint64_t epoch, uint64_t) {
  auto* host = static_cast<Host*>(self);
  if (epoch == host->epoch_ && host->up_ && host->process_) {
    Work work;
    work.kind = WorkKind::kStart;
    work.name = "start";
    host->PushWork(std::move(work));
  }
}

void Host::Crash() {
  if (!up_) {
    return;
  }
  up_ = false;
  ++epoch_;
  process_.reset();
  queue_.clear();
  drain_pending_ = false;
  for (auto& [timer_id, timer] : timers_) {
    sim_->Cancel(timer.event);
  }
  timers_.clear();
  if (journal_ != nullptr && journal_->enabled()) {
    journal_->Record(id_, obs::JournalKind::kCrash, sim_->Now(), 0, epoch_);
  }
  if (critpath_ != nullptr) {
    critpath_->OnHostCrash(id_);  // Reboot resets cpu_free_at_: sever the CPU chain.
  }
  if (lifecycle_) {
    lifecycle_(id_, "crash");
  }
}

void Host::InjectStall(SimDuration d) {
  ACHILLES_CHECK(d >= 0);
  if (!up_) {
    return;
  }
  // A stall is just a handler that burns CPU: everything queued behind it (and any arrival
  // during the stall) waits it out, exactly like a long GC pause would behave.
  if (journal_ != nullptr && journal_->enabled()) {
    journal_->Record(id_, obs::JournalKind::kStall, sim_->Now(), 0,
                     static_cast<uint64_t>(d));
  }
  Work work;
  work.kind = WorkKind::kStall;
  work.stall = d;
  work.name = "stall";
  PushWork(std::move(work));
}

void Host::Reboot(std::unique_ptr<IProcess> process, SimDuration init_delay) {
  ACHILLES_CHECK(!up_);
  const uint64_t epoch = epoch_;
  // Ownership of the fresh process transfers into the boot event (rare control event:
  // the boxed std::function path is fine here).
  auto shared = std::make_shared<std::unique_ptr<IProcess>>(std::move(process));
  sim_->ScheduleAfter(init_delay, [this, epoch, shared] {
    if (epoch != epoch_ || up_) {
      return;  // Crashed again (or already rebooted) in the meantime.
    }
    BindProcess(std::move(*shared));
  });
}

Host::Delivery* Host::AllocDelivery() {
  if (delivery_free_ == nullptr) {
    auto slab = std::make_unique<Delivery[]>(kDeliverySlabSize);
    for (size_t i = kDeliverySlabSize; i-- > 0;) {
      slab[i].next = delivery_free_;
      delivery_free_ = &slab[i];
    }
    delivery_slabs_.push_back(std::move(slab));
  }
  Delivery* d = delivery_free_;
  delivery_free_ = d->next;
  d->next = nullptr;
  return d;
}

void Host::FreeDelivery(Delivery* d) {
  d->msg.reset();  // Release the payload reference while the slot sits on the freelist.
  d->has_path = false;
  d->next = delivery_free_;
  delivery_free_ = d;
}

void Host::DeliverAt(SimTime arrival, uint32_t from, MessageRef msg,
                     const obs::Path* path) {
  Delivery* d = AllocDelivery();
  d->msg = std::move(msg);
  d->from = from;
  d->has_path = path != nullptr;
  if (path != nullptr) {
    d->path = *path;
  }
  sim_->ScheduleRawAt(arrival, &Host::DeliveryEvent, this,
                      reinterpret_cast<uint64_t>(d));
}

void Host::DeliveryEvent(void* self, uint64_t record, uint64_t) {
  auto* host = static_cast<Host*>(self);
  host->FinishDelivery(reinterpret_cast<Delivery*>(record));
}

void Host::FinishDelivery(Delivery* d) {
  // Liveness of the *current* incarnation is checked at arrival time: messages that arrive
  // while the host is down are lost, while messages still in flight across a reboot reach
  // the new incarnation (the network layer has no per-connection state to tear down).
  if (up_ && process_) {
    // Flight recorder: one deliver event per accepted arrival, parented to the send that
    // produced it (the seq rides in the path); the handler it queues inherits the deliver
    // event as its causal context.
    uint64_t jctx = 0;
    if (journal_ != nullptr && journal_->enabled()) {
      jctx = journal_->Record(id_, obs::JournalKind::kDeliver, sim_->Now(),
                              d->has_path ? d->path.jparent : 0, d->from,
                              d->msg->WireSize(), d->msg->TraceName());
    }
    Work work;
    work.kind = WorkKind::kMessage;
    work.from = d->from;
    work.msg = std::move(d->msg);
    work.name = work.msg->TraceName();
    work.has_path = d->has_path;
    if (d->has_path) {
      work.path = d->path;
    }
    work.jctx = jctx;
    PushWork(std::move(work));
  }
  FreeDelivery(d);
}

void Host::ChargeCpuAs(obs::Component c, SimDuration d) {
  ACHILLES_CHECK(d >= 0);
  if (in_handler_) {
    handler_charge_ += d;
    cur_path_.Extend(c, d);
    if (critpath_ != nullptr && cur_path_.activity != 0) {
      critpath_->AddService(cur_path_.activity, c, d);
    }
  } else {
    // Charges outside a handler (e.g. setup) extend the CPU horizon directly.
    cpu_free_at_ = std::max(cpu_free_at_, sim_->Now()) + d;
  }
  cpu_used_ += d;
}

SimTime Host::LocalNow() const {
  return in_handler_ ? sim_->Now() + handler_charge_ : sim_->Now();
}

obs::Path Host::SendPath() const {
  if (in_handler_) {
    return cur_path_;  // Invariant: covered_until == LocalNow().
  }
  obs::Path fresh;
  fresh.Restart(sim_->Now());
  return fresh;
}

void Host::RestartPathAt(SimTime origin) {
  const uint64_t span = cur_path_.span;
  const uint64_t jparent = cur_path_.jparent;  // Same handler context, same causal parent.
  cur_path_.Restart(origin, span);
  cur_path_.jparent = jparent;
  // Any handler time already spent past `origin` (e.g. building the block that defines the
  // proposal point) is CPU service; re-covering it keeps sum(parts) == LocalNow - origin.
  cur_path_.CoverUntil(obs::Component::kCpu, LocalNow());
  if (critpath_ != nullptr && critpath_->enabled()) {
    cur_path_.activity = critpath_->BeginOrigin(id_, origin, LocalNow());
  } else {
    cur_path_.activity = 0;
  }
}

uint64_t Host::SetTimer(SimDuration delay, std::function<void()> fn) {
  ACHILLES_CHECK(up_);
  const uint64_t timer_id = next_timer_id_++;
  const EventId event =
      sim_->ScheduleRawAfter(delay, &Host::TimerEvent, this, timer_id, epoch_);
  timers_.emplace(timer_id, Timer{event, std::move(fn)});
  return timer_id;
}

void Host::TimerEvent(void* self, uint64_t timer_id, uint64_t epoch) {
  auto* host = static_cast<Host*>(self);
  if (epoch != host->epoch_ || !host->up_) {
    return;
  }
  auto it = host->timers_.find(timer_id);
  if (it == host->timers_.end()) {
    return;
  }
  Work work;
  work.kind = WorkKind::kTimer;
  work.fn = std::move(it->second.fn);
  work.name = "timer";
  host->timers_.erase(it);
  host->PushWork(std::move(work));
}

void Host::CancelTimer(uint64_t timer_id) {
  auto it = timers_.find(timer_id);
  if (it != timers_.end()) {
    sim_->Cancel(it->second.event);
    timers_.erase(it);
  }
}

void Host::PushWork(Work&& work) {
  queue_.push_back(std::move(work));
  ScheduleDrain();
}

void Host::ScheduleDrain() {
  if (drain_pending_ || queue_.empty() || !up_) {
    return;
  }
  drain_pending_ = true;
  const SimTime start = std::max(cpu_free_at_, sim_->Now());
  sim_->ScheduleRawAt(start, &Host::DrainEvent, this, epoch_);
}

void Host::DrainEvent(void* self, uint64_t epoch, uint64_t) {
  auto* host = static_cast<Host*>(self);
  if (epoch != host->epoch_ || !host->up_) {
    return;
  }
  host->DrainOne();
}

void Host::DrainOne() {
  drain_pending_ = false;
  if (queue_.empty()) {
    return;
  }
  Work work = std::move(queue_.front());
  queue_.pop_front();
  in_handler_ = true;
  handler_charge_ = 0;
  const SimTime start = sim_->Now();
  if (work.has_path) {
    cur_path_ = work.path;
  } else {
    cur_path_.Restart(start);  // Timer/start handlers begin a fresh causal chain.
  }
  // The handler's journal parent is its deliver event (path-less deliveries included).
  cur_path_.jparent = work.jctx;
  // Run-queue wait between arrival (the path frontier) and handler start.
  if (queue_wait_ns_ != nullptr && start > cur_path_.covered_until) {
    queue_wait_ns_->Record(start - cur_path_.covered_until);
  }
  if (critpath_ != nullptr && critpath_->enabled()) {
    cur_path_.activity = critpath_->BeginHandler(id_, work.name, cur_path_.activity,
                                                 cur_path_.covered_until, start);
  } else {
    cur_path_.activity = 0;
  }
  cur_path_.CoverUntil(obs::Component::kCpu, start);
  if (tracer_ != nullptr && tracer_->enabled()) {
    cur_path_.span = tracer_->Begin(work.name, id_, start, cur_path_.span);
  } else {
    cur_path_.span = 0;
  }
  const uint64_t span = cur_path_.span;
  switch (work.kind) {
    case WorkKind::kMessage:
      process_->OnMessage(work.from, work.msg);
      break;
    case WorkKind::kTimer:
      work.fn();
      break;
    case WorkKind::kStart:
      process_->OnStart();
      break;
    case WorkKind::kStall:
      ChargeCpu(work.stall);
      break;
  }
  if (span != 0 && tracer_ != nullptr) {
    tracer_->End(span, id_, start + handler_charge_);
  }
  if (handler_ns_ != nullptr) {
    handler_ns_->Record(handler_charge_);
  }
  in_handler_ = false;
  cpu_free_at_ = sim_->Now() + handler_charge_;
  ScheduleDrain();
}

}  // namespace achilles
