#include "src/sim/event_queue.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace achilles {

const char* SimEngineName(SimEngine engine) {
  switch (engine) {
    case SimEngine::kCalendar:
      return "calendar";
    case SimEngine::kHeap:
      return "heap";
  }
  return "unknown";
}

bool SimEngineFromName(std::string_view name, SimEngine* out) {
  if (name == "calendar") {
    *out = SimEngine::kCalendar;
    return true;
  }
  if (name == "heap") {
    *out = SimEngine::kHeap;
    return true;
  }
  return false;
}

// --- EventPool ---

EventPool::~EventPool() {
  // Nodes still pending at simulation teardown own their boxed closures; freelist nodes
  // have boxed == nullptr, so one sweep over the slabs releases everything.
  for (auto& slab : slabs_) {
    for (size_t i = 0; i < kSlabSize; ++i) {
      delete slab[i].boxed;
    }
  }
}

EventNode* EventPool::Alloc() {
  if (free_ == nullptr) {
    auto slab = std::make_unique<EventNode[]>(kSlabSize);
    // Chain the fresh slab into the freelist (reverse order so slot 0 pops first).
    for (size_t i = kSlabSize; i-- > 0;) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
  }
  EventNode* n = free_;
  free_ = n->next;
  n->prev = nullptr;
  n->next = nullptr;
  n->bucket = 0;
  n->cancelled = false;
  n->raw = nullptr;
  n->obj = nullptr;
  n->a = 0;
  n->b = 0;
  n->boxed = nullptr;
  ++live_;
  high_water_ = std::max(high_water_, live_);
  return n;
}

void EventPool::Free(EventNode* n) {
  delete n->boxed;  // Cancelled generic events die with their closure un-run.
  n->boxed = nullptr;
  ++n->gen;  // Invalidates every outstanding EventId handle to this node.
  n->prev = nullptr;
  n->next = free_;
  free_ = n;
  --live_;
}

// --- HeapQueue ---

void HeapQueue::Push(EventNode* n) {
  heap_.push_back(n);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void HeapQueue::PopRoot() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  size_t i = 0;
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t best = i;
    if (left < n && Earlier(heap_[left], heap_[best])) {
      best = left;
    }
    if (right < n && Earlier(heap_[right], heap_[best])) {
      best = right;
    }
    if (best == i) {
      break;
    }
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

EventNode* HeapQueue::PeekEarliest(EventPool& pool) {
  while (!heap_.empty() && heap_.front()->cancelled) {
    EventNode* dead = heap_.front();
    PopRoot();
    pool.Free(dead);
  }
  return heap_.empty() ? nullptr : heap_.front();
}

EventNode* HeapQueue::PopEarliest(EventPool& pool) {
  EventNode* n = PeekEarliest(pool);
  if (n != nullptr) {
    PopRoot();
  }
  return n;
}

// --- CalendarQueue ---

CalendarQueue::CalendarQueue(SimEngine) : buckets_(kMinBuckets) {}

void CalendarQueue::InsertNode(EventNode* n) {
  const uint64_t day = DayOf(n->time);
  Bucket& b = buckets_[day & mask_];
  n->bucket = static_cast<uint32_t>(day & mask_);
  EventNode* cur = b.tail;
  // Seq is globally increasing, so freshly scheduled events sort at or after the tail;
  // the backward walk almost always stops immediately (tail append), including for
  // bursts of many events at one tick.
  while (cur != nullptr &&
         (cur->time > n->time || (cur->time == n->time && cur->seq > n->seq))) {
    cur = cur->prev;
  }
  if (cur == nullptr) {
    n->next = b.head;
    n->prev = nullptr;
    if (b.head != nullptr) {
      b.head->prev = n;
    } else {
      b.tail = n;
    }
    b.head = n;
  } else {
    n->next = cur->next;
    n->prev = cur;
    if (cur->next != nullptr) {
      cur->next->prev = n;
    } else {
      b.tail = n;
    }
    cur->next = n;
  }
}

void CalendarQueue::Unlink(EventNode* n) {
  Bucket& b = buckets_[n->bucket];
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    b.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    b.tail = n->prev;
  }
  n->prev = nullptr;
  n->next = nullptr;
}

void CalendarQueue::Push(EventNode* n) {
  if (size_ + 1 > 2 * buckets_.size()) {
    Resize(2 * buckets_.size());
  }
  const uint64_t day = DayOf(n->time);
  if (size_ == 0 || day < cur_day_) {
    cur_day_ = day;  // Never let the cursor sit past a pending event.
  }
  InsertNode(n);
  ++size_;
}

EventNode* CalendarQueue::PeekEarliest(EventPool&) {
  if (size_ == 0) {
    return nullptr;
  }
  const size_t nb = buckets_.size();
  for (size_t i = 0; i < nb; ++i) {
    const Bucket& b = buckets_[cur_day_ & mask_];
    EventNode* h = b.head;
    if (h != nullptr) {
      // The head is this bucket's earliest event; it belongs to the cursor day unless
      // it wrapped in from a later year. No event can precede the cursor day (Push and
      // Resize pull the cursor back), so the day-window check needs only the far edge.
      const uint64_t day_end = (cur_day_ + 1) * static_cast<uint64_t>(width_);
      if (static_cast<uint64_t>(h->time) < day_end) {
        return h;
      }
    }
    ++cur_day_;
  }
  // A whole year without a hit: everything pending lives far past the cursor. Find the
  // min over bucket heads directly and jump the cursor to it.
  EventNode* best = nullptr;
  for (const Bucket& b : buckets_) {
    EventNode* h = b.head;
    if (h != nullptr && (best == nullptr || h->time < best->time ||
                         (h->time == best->time && h->seq < best->seq))) {
      best = h;
    }
  }
  ACHILLES_CHECK(best != nullptr);
  cur_day_ = DayOf(best->time);
  return best;
}

EventNode* CalendarQueue::PopEarliest(EventPool& pool) {
  EventNode* n = PeekEarliest(pool);
  if (n == nullptr) {
    return nullptr;
  }
  Unlink(n);
  --size_;
  if (size_ < buckets_.size() / 4 && buckets_.size() > kMinBuckets) {
    Resize(buckets_.size() / 2);
  }
  return n;
}

void CalendarQueue::Remove(EventNode* n, EventPool& pool) {
  Unlink(n);
  --size_;
  pool.Free(n);
}

SimDuration CalendarQueue::EstimateWidth(const std::vector<EventNode*>& sorted) const {
  if (sorted.size() < 2) {
    return width_;
  }
  // Day width targets the inter-event gap of the events that will pop soonest (what the
  // cursor sweeps next); far-future outliers (liveness timers) must not stretch it.
  const size_t window = std::min<size_t>(sorted.size(), 64);
  const SimTime lo = sorted.front()->time;
  SimTime hi = sorted[window - 1]->time;
  SimDuration gap = (hi - lo) / static_cast<SimDuration>(window - 1);
  if (gap == 0) {
    // Burst at one tick: fall back to the global spread so distant events still land a
    // sane number of years out.
    hi = sorted.back()->time;
    gap = (hi - lo) / static_cast<SimDuration>(sorted.size() - 1);
  }
  // ~3 events per day on average keeps the sorted bucket lists short.
  return std::clamp<SimDuration>(3 * gap, 1, Sec(1));
}

void CalendarQueue::Resize(size_t nbuckets) {
  nbuckets = std::max(kMinBuckets, nbuckets);
  std::vector<EventNode*> nodes;
  nodes.reserve(size_);
  for (const Bucket& b : buckets_) {
    for (EventNode* n = b.head; n != nullptr;) {
      EventNode* next = n->next;
      nodes.push_back(n);
      n = next;
    }
  }
  std::sort(nodes.begin(), nodes.end(), [](const EventNode* x, const EventNode* y) {
    return x->time != y->time ? x->time < y->time : x->seq < y->seq;
  });
  buckets_.assign(nbuckets, Bucket{});
  mask_ = nbuckets - 1;
  width_ = EstimateWidth(nodes);
  ++resizes_;
  cur_day_ = nodes.empty() ? 0 : DayOf(nodes.front()->time);
  for (EventNode* n : nodes) {
    n->prev = nullptr;
    n->next = nullptr;
    InsertNode(n);  // Sorted order makes every insert a tail append.
  }
}

}  // namespace achilles
