// Point-to-point message fabric with per-link Gaussian latency, NIC bandwidth, loss and
// partitions. LAN/WAN presets mirror the paper's NetEm settings (RTT 0.1±0.02 ms and
// 40±0.2 ms respectively, 10 Gbps NICs).
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/sim/host.h"

namespace achilles {

struct NetworkConfig {
  SimDuration one_way_base = Us(50);   // Mean one-way propagation delay.
  SimDuration one_way_jitter = Us(10); // Gaussian stddev of the one-way delay.
  double bandwidth_bps = 10e9;         // Per-message serialization delay = bits / bandwidth.
  SimDuration loopback_delay = Us(1);  // Self-sends (process-local pipes).
  double drop_rate = 0.0;              // Uniform loss; reliable channels use 0.

  static NetworkConfig Lan();
  static NetworkConfig Wan();
};

// Scripted schedule perturbation (the chaos harness's "jitter" fault). All randomness is
// drawn from the simulation RNG inside Send(), so a given seed still yields a bit-identical
// schedule. Delayed duplicates model the network replaying an old packet — the classic
// stale-message attack surface that rollback-resilient recovery must tolerate.
struct NetworkChaos {
  SimDuration extra_delay_max = 0;    // Uniform extra one-way delay in [0, max].
  double reorder_prob = 0.0;          // Chance of an additional bump (lets later msgs overtake).
  SimDuration reorder_delay_max = 0;  // Size of that bump, uniform in [0, max].
  double dup_prob = 0.0;              // Chance the message is delivered a second time...
  SimDuration dup_delay_max = 0;      // ...this much later (uniform), as a stale replay.

  bool enabled() const {
    return extra_delay_max > 0 || reorder_prob > 0.0 || dup_prob > 0.0;
  }
};

class Network {
 public:
  Network(Simulation* sim, NetworkConfig config);

  // Hosts register by id; ids must be dense from 0.
  void AddHost(Host* host);
  Host& host(uint32_t id) { return *hosts_[id]; }
  size_t num_hosts() const { return hosts_.size(); }

  // Maps a host onto a physical machine's NIC: hosts sharing a machine contend on one
  // egress queue (used by the concurrent-instances extension, where several consensus
  // instances run on the same box). Default: one machine per host.
  void SetMachine(uint32_t host_id, uint32_t machine_id);

  const NetworkConfig& config() const { return config_; }
  void set_config(const NetworkConfig& config) { config_ = config; }

  // Enables/disables scripted schedule perturbation ({} turns it off).
  void SetChaos(const NetworkChaos& chaos) { chaos_ = chaos; }
  const NetworkChaos& chaos() const { return chaos_; }

  // Observability tap: invoked once per scheduled delivery (including chaos duplicates)
  // with (from, to, msg, arrival). Never called for dropped/blocked messages. The tap runs
  // outside any host handler and must not mutate simulation state that affects timing —
  // the chaos runner uses it to audit recovery traffic and to record replayable messages.
  using DeliveryTap = std::function<void(uint32_t, uint32_t, const MessageRef&, SimTime)>;
  void SetDeliveryTap(DeliveryTap tap) { tap_ = std::move(tap); }

  // Sends msg from -> to. Departure time is the sender's LocalNow (so CPU charges delay
  // sends). Returns the computed arrival time (for tracing); dropped messages return -1.
  SimTime Send(uint32_t from, uint32_t to, MessageRef msg);

  // Broadcast helper to a set of destinations; sender excluded unless listed.
  void Multicast(uint32_t from, const std::vector<uint32_t>& to, const MessageRef& msg);

  // --- Fault injection ---
  // Splits hosts into isolation groups; traffic crosses groups only if neither endpoint is
  // assigned, and assigned endpoints talk only within their group.
  void Partition(const std::vector<std::vector<uint32_t>>& groups);
  void ClearPartition();
  // Blocks/unblocks a single directed link.
  void SetLinkBlocked(uint32_t from, uint32_t to, bool blocked);
  bool CanReach(uint32_t from, uint32_t to) const;

  // --- Stats ---
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  void ResetStats();

  // Registers wire-level instruments (message/byte counters, NIC-wait histogram) in
  // `registry`. Observability only — no effect on simulated timing.
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Critical-path collector: every Send records a transit activity (NIC wait/serialization
  // + propagation) on the delivered path. Memory-only, zero virtual cost.
  void set_critpath(obs::CritPathCollector* critpath) { critpath_ = critpath; }

 private:
  Simulation* sim_;
  NetworkConfig config_;
  NetworkChaos chaos_;
  DeliveryTap tap_;
  std::vector<Host*> hosts_;
  std::vector<SimTime> nic_free_at_;  // Per-machine egress NIC: broadcasts serialize here.
  std::vector<uint32_t> machine_of_;  // Host -> NIC (machine) index.
  std::vector<int> group_of_;         // -1 = unassigned.
  std::set<std::pair<uint32_t, uint32_t>> blocked_links_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  obs::Counter* messages_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Histogram* nic_wait_ns_ = nullptr;  // Departure -> wire (egress queueing) per message.
  obs::CritPathCollector* critpath_ = nullptr;
};

}  // namespace achilles

#endif  // SRC_SIM_NETWORK_H_
