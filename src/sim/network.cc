#include "src/sim/network.h"

#include <algorithm>

#include "src/common/check.h"

namespace achilles {

NetworkConfig NetworkConfig::Lan() {
  NetworkConfig c;
  c.one_way_base = Us(50);    // RTT 0.1 ms.
  c.one_way_jitter = Us(10);  // RTT jitter ±0.02 ms.
  c.bandwidth_bps = 5e9;  // Artifact appendix D.2.2: 5 Gbps private NICs.
  return c;
}

NetworkConfig NetworkConfig::Wan() {
  NetworkConfig c;
  c.one_way_base = Ms(20);     // RTT 40 ms.
  c.one_way_jitter = Us(100);  // RTT jitter ±0.2 ms.
  c.bandwidth_bps = 5e9;
  return c;
}

Network::Network(Simulation* sim, NetworkConfig config) : sim_(sim), config_(config) {}

void Network::AddHost(Host* host) {
  ACHILLES_CHECK(host->id() == hosts_.size());
  hosts_.push_back(host);
  nic_free_at_.push_back(0);
  machine_of_.push_back(host->id());
  group_of_.push_back(-1);
}

void Network::SetMachine(uint32_t host_id, uint32_t machine_id) {
  ACHILLES_CHECK(host_id < machine_of_.size() && machine_id < nic_free_at_.size());
  machine_of_[host_id] = machine_id;
}

SimTime Network::Send(uint32_t from, uint32_t to, MessageRef msg) {
  ACHILLES_CHECK(from < hosts_.size() && to < hosts_.size());
  ++messages_sent_;
  bytes_sent_ += msg->WireSize();
  if (messages_metric_ != nullptr) {
    messages_metric_->Inc();
    bytes_metric_->Inc(msg->WireSize());
  }
  const SimTime departure = hosts_[from]->LocalNow();
  // Attribution: the sender's causal chain rides along with the delivery, extended by the
  // wire-level components computed below.
  obs::Path path = hosts_[from]->SendPath();
  // Flight recorder: one send event parented to the sender's handler context; its seq
  // rides in the path so the receiver's deliver event can point back at it.
  obs::Journal* journal = hosts_[from]->journal();
  if (journal != nullptr && journal->enabled()) {
    path.jparent = journal->Record(from, obs::JournalKind::kSend, departure, path.jparent,
                                   to, msg->WireSize(), msg->TraceName());
  }
  if (from == to) {
    const SimTime arrival = departure + config_.loopback_delay;
    const SimTime dep = path.covered_until;  // Sender's causal frontier at Send.
    path.CoverUntil(obs::Component::kNetPropagation, arrival);
    if (critpath_ != nullptr && critpath_->enabled()) {
      path.activity = critpath_->BeginTransit(from, to, msg->TraceName(), path.activity,
                                              dep, dep, dep, arrival, /*nic=*/0,
                                              /*holds_nic=*/false);
    }
    if (tap_) {
      tap_(from, to, msg, arrival);
    }
    hosts_[to]->DeliverAt(arrival, from, std::move(msg), &path);
    return arrival;
  }
  if (!CanReach(from, to)) {
    return -1;
  }
  if (config_.drop_rate > 0.0 && sim_->rng().Chance(config_.drop_rate)) {
    return -1;
  }
  const double bits = static_cast<double>(msg->WireSize()) * 8.0;
  const SimDuration serialize = static_cast<SimDuration>(bits / config_.bandwidth_bps * kSecond);
  // Egress NIC queueing: copies of a broadcast leave one after another, so fanning out a
  // large block to n peers costs n serializations on the sender's link.
  const uint32_t nic = machine_of_[from];
  const SimTime tx_start = std::max(departure, nic_free_at_[nic]);
  const SimTime tx_end = tx_start + serialize;
  nic_free_at_[nic] = tx_end;
  if (nic_wait_ns_ != nullptr) {
    nic_wait_ns_->Record(tx_start - departure);
  }
  const double jitter =
      sim_->rng().Gaussian(0.0, static_cast<double>(config_.one_way_jitter));
  const SimDuration propagation =
      std::max<SimDuration>(0, config_.one_way_base + static_cast<SimDuration>(jitter));
  SimTime arrival = tx_end + propagation;
  // Chaos perturbation (loopback is exempt: self-pipes are process-local). Extra delay and
  // reorder bumps stretch the propagation component; both draws come from the sim RNG so
  // the schedule stays seed-deterministic.
  if (chaos_.enabled()) {
    if (chaos_.extra_delay_max > 0) {
      arrival += static_cast<SimDuration>(
          sim_->rng().UniformU64(static_cast<uint64_t>(chaos_.extra_delay_max) + 1));
    }
    if (chaos_.reorder_prob > 0.0 && sim_->rng().Chance(chaos_.reorder_prob)) {
      arrival += static_cast<SimDuration>(
          sim_->rng().UniformU64(static_cast<uint64_t>(chaos_.reorder_delay_max) + 1));
    }
  }
  const SimTime dep = path.covered_until;  // Sender's causal frontier at Send.
  path.CoverUntil(obs::Component::kNicSerialization, tx_end);
  path.CoverUntil(obs::Component::kNetPropagation, arrival);
  if (critpath_ != nullptr && critpath_->enabled()) {
    path.activity = critpath_->BeginTransit(from, to, msg->TraceName(), path.activity, dep,
                                            tx_start, tx_end, arrival, nic,
                                            /*holds_nic=*/true);
  }
  if (tap_) {
    tap_(from, to, msg, arrival);
  }
  hosts_[to]->DeliverAt(arrival, from, msg, &path);
  // Delayed duplicate: the network re-delivers the same packet later (stale replay).
  if (chaos_.dup_prob > 0.0 && sim_->rng().Chance(chaos_.dup_prob)) {
    const SimTime dup_arrival =
        arrival + 1 +
        static_cast<SimDuration>(
            sim_->rng().UniformU64(static_cast<uint64_t>(chaos_.dup_delay_max) + 1));
    obs::Path dup_path = path;
    dup_path.CoverUntil(obs::Component::kNetPropagation, dup_arrival);
    if (critpath_ != nullptr && critpath_->enabled()) {
      // The duplicate is triggered by the original transit; it holds no NIC (the bytes
      // already left the sender) and only adds propagation past the first arrival.
      dup_path.activity = critpath_->BeginTransit(from, to, msg->TraceName(), path.activity,
                                                  arrival, arrival, arrival, dup_arrival,
                                                  /*nic=*/0, /*holds_nic=*/false);
    }
    if (tap_) {
      tap_(from, to, msg, dup_arrival);
    }
    hosts_[to]->DeliverAt(dup_arrival, from, std::move(msg), &dup_path);
  }
  return arrival;
}

void Network::Multicast(uint32_t from, const std::vector<uint32_t>& to, const MessageRef& msg) {
  for (uint32_t dst : to) {
    Send(from, dst, msg);
  }
}

void Network::Partition(const std::vector<std::vector<uint32_t>>& groups) {
  std::fill(group_of_.begin(), group_of_.end(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (uint32_t id : groups[g]) {
      ACHILLES_CHECK(id < group_of_.size());
      group_of_[id] = static_cast<int>(g);
    }
  }
}

void Network::ClearPartition() { std::fill(group_of_.begin(), group_of_.end(), -1); }

void Network::SetLinkBlocked(uint32_t from, uint32_t to, bool blocked) {
  if (blocked) {
    blocked_links_.insert({from, to});
  } else {
    blocked_links_.erase({from, to});
  }
}

bool Network::CanReach(uint32_t from, uint32_t to) const {
  if (blocked_links_.count({from, to}) > 0) {
    return false;
  }
  const int gf = group_of_[from];
  const int gt = group_of_[to];
  if (gf >= 0 && gt >= 0 && gf != gt) {
    return false;
  }
  // Unassigned hosts (e.g. clients) can talk to everyone.
  return true;
}

void Network::ResetStats() {
  messages_sent_ = 0;
  bytes_sent_ = 0;
}

void Network::AttachMetrics(obs::MetricsRegistry* registry) {
  messages_metric_ = registry->GetCounter("net.messages");
  bytes_metric_ = registry->GetCounter("net.bytes");
  nic_wait_ns_ = registry->GetHistogram("net.nic_wait_ns");
}

}  // namespace achilles
