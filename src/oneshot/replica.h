// OneShot replica: four communication steps on the piggyback fast path (previous view
// committed), six on the NEW-VIEW slow path. With a counter-equipped platform this is
// OneShot-R (1 write per node per fast view, 2 otherwise).
#ifndef SRC_ONESHOT_REPLICA_H_
#define SRC_ONESHOT_REPLICA_H_

#include <map>
#include <vector>

#include "src/consensus/replica_base.h"
#include "src/oneshot/checker.h"
#include "src/oneshot/messages.h"

namespace achilles {

class OneShotReplica : public ReplicaBase {
 public:
  OneShotReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;
  bool halted() const { return checker_ == nullptr; }
  View current_view() const { return cur_view_; }
  uint64_t fast_views() const { return fast_views_; }
  uint64_t slow_views() const { return slow_views_; }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.halted = halted();
    if (checker_ != nullptr) {
      snap.view = checker_->vi();
      snap.trusted_version = checker_->version();
    }
    return snap;
  }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;

 private:
  void OnPropose(NodeId from, const std::shared_ptr<const OsProposeMsg>& msg);
  void OnVote1(const OsVote1Msg& msg);
  void OnPreCommit(NodeId from, const std::shared_ptr<const OsPreCommitMsg>& msg);
  void OnCommitVote(const OsCommitVoteMsg& msg);
  void OnDecide(NodeId from, const std::shared_ptr<const OsDecideMsg>& msg);
  void OnNewView(const OsNewViewMsg& msg);

  void TryProposeFast(View w);
  void TryProposeSlow(View w);
  void FinishProposal(View w, const BlockPtr& block, const SignedCert& cert, bool fast);
  void AdvanceViaNewView(View target);
  void EnterViewAfterCommit(View new_view, const std::shared_ptr<const OsDecideMsg>& msg);

  std::unique_ptr<OneShotChecker> checker_;
  View cur_view_ = 0;
  uint32_t consecutive_timeouts_ = 0;
  uint64_t fast_views_ = 0;
  uint64_t slow_views_ = 0;

  std::map<View, std::vector<SignedCert>> vote1_;
  std::map<View, std::vector<SignedCert>> commit_votes_;
  std::map<View, std::vector<SignedCert>> view_certs_;
  std::map<View, Hash256> proposed_hash_;
  std::map<View, QuorumCert> commit_certs_;
  View highest_precommit_ = 0;
  View highest_decided_ = 0;

  std::vector<std::pair<NodeId, std::shared_ptr<const OsProposeMsg>>> pending_proposals_;
  std::vector<std::pair<NodeId, std::shared_ptr<const OsDecideMsg>>> pending_decides_;
};

}  // namespace achilles

#endif  // SRC_ONESHOT_REPLICA_H_
