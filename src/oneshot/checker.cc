#include "src/oneshot/checker.h"

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr const char* kSealSlot = "oneshot-checker";
}

OneShotChecker::OneShotChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f)
    : OneShotChecker(enclave, n, f, /*restored=*/false) {
  PersistState();
}

OneShotChecker::OneShotChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f,
                               bool /*restored*/)
    : enclave_(enclave), n_(n), f_(f) {
  preph_ = Block::Genesis()->hash;
}

std::unique_ptr<OneShotChecker> OneShotChecker::Restore(EnclaveRuntime* enclave, uint32_t n,
                                                        uint32_t f,
                                                        bool break_restore_verify) {
  enclave->ChargeEcall();
  persist::OpenResult opened = enclave->defense().Open(kSealSlot, !break_restore_verify);
  if (opened.status == persist::OpenStatus::kRolledBack) {
    enclave->platform().host().JournalEvent(obs::JournalKind::kRollbackReject,
                                            opened.version, opened.expected_version,
                                            kSealSlot);
    return nullptr;  // Rollback detected.
  }
  if (!opened.record) {
    return nullptr;
  }
  ByteReader r(ByteView(opened.record->data(), opened.record->size()));
  const auto vi = r.U64();
  const auto flags = r.U8();
  const auto prepv = r.U64();
  const auto preph = r.Raw(32);
  if (!vi || !flags || !prepv || !preph || r.remaining() != 0) {
    return nullptr;
  }
  auto checker =
      std::unique_ptr<OneShotChecker>(new OneShotChecker(enclave, n, f, /*restored=*/true));
  checker->vi_ = *vi;
  checker->flag_ = (*flags & 1) != 0;
  checker->voted1_ = (*flags & 2) != 0;
  checker->voted2_ = (*flags & 4) != 0;
  checker->prepv_ = *prepv;
  std::copy(preph->begin(), preph->end(), checker->preph_.begin());
  checker->version_ = opened.version;
  return checker;
}

void OneShotChecker::PersistState() {
  ByteWriter w;
  w.U64(vi_);
  w.U8(static_cast<uint8_t>((flag_ ? 1 : 0) | (voted1_ ? 2 : 0) | (voted2_ ? 4 : 0)));
  w.U64(prepv_);
  w.Raw(ByteView(preph_.data(), preph_.size()));
  // Backend assigns the version, binds it to the blob, and pays the defense cost (counter
  // write / quorum round trip).
  version_ = enclave_->defense().Persist(kSealSlot, ByteView(w.bytes().data(), w.bytes().size()));
}

void OneShotChecker::AdvanceTo(View v) {
  if (v > vi_) {
    vi_ = v;
    flag_ = false;
    voted1_ = false;
    voted2_ = false;
  }
}

SignedCert OneShotChecker::SignTuple(const char* domain, const Hash256& hash, View view,
                                     uint64_t aux) {
  SignedCert cert;
  cert.hash = hash;
  cert.view = view;
  cert.aux = aux;
  enclave_->ChargeSign();
  const Bytes digest = cert.Digest(domain);
  cert.sig = enclave_->Sign(ByteView(digest.data(), digest.size()));
  return cert;
}

std::optional<SignedCert> OneShotChecker::ToPrepareFast(const Block& b,
                                                        const QuorumCert& commit_qc) {
  enclave_->ChargeEcall();
  const View new_view = commit_qc.view + 1;
  if (new_view < vi_ || (new_view == vi_ && flag_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(commit_qc.sigs.size());
  if (!commit_qc.Verify(enclave_->platform().suite(), kOsCommit,
                        static_cast<size_t>(f_) + 1) ||
      b.parent != commit_qc.hash || b.view != new_view) {
    return std::nullopt;
  }
  AdvanceTo(new_view);
  flag_ = true;
  PersistState();
  // aux = 1 marks the fast path: backups may single-phase store this certificate.
  return SignTuple(kOsPrep, b.hash, vi_, /*aux=*/1);
}

std::optional<SignedCert> OneShotChecker::ToPrepareSlow(const Block& b,
                                                        const AccumulatorCert& acc) {
  enclave_->ChargeEcall();
  if (acc.current_view != vi_ || flag_ ||
      acc.sig.signer != enclave_->platform().node_id()) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = acc.Digest(kOsAcc);
  if (!enclave_->Verify(acc.sig, ByteView(digest.data(), digest.size())) ||
      b.parent != acc.hash || b.view != vi_) {
    return std::nullopt;
  }
  flag_ = true;
  PersistState();
  return SignTuple(kOsPrep, b.hash, vi_, /*aux=*/0);
}

std::optional<SignedCert> OneShotChecker::ToStoreFast(const SignedCert& prep_cert) {
  enclave_->ChargeEcall();
  const View v = prep_cert.view;
  if (v < vi_ || (v == vi_ && voted2_) || prep_cert.aux != 1 ||
      prep_cert.sig.signer != LeaderOfView(v, n_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = prep_cert.Digest(kOsPrep);
  if (!enclave_->Verify(prep_cert.sig, ByteView(digest.data(), digest.size()))) {
    return std::nullopt;
  }
  AdvanceTo(v);
  voted1_ = true;
  voted2_ = true;
  prepv_ = v;
  preph_ = prep_cert.hash;
  PersistState();
  return SignTuple(kOsCommit, prep_cert.hash, v);
}

std::optional<SignedCert> OneShotChecker::ToVote(const SignedCert& prep_cert) {
  enclave_->ChargeEcall();
  const View v = prep_cert.view;
  if (v < vi_ || (v == vi_ && voted1_) ||
      prep_cert.sig.signer != LeaderOfView(v, n_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = prep_cert.Digest(kOsPrep);
  if (!enclave_->Verify(prep_cert.sig, ByteView(digest.data(), digest.size()))) {
    return std::nullopt;
  }
  AdvanceTo(v);
  voted1_ = true;
  PersistState();
  return SignTuple(kOsVote1, prep_cert.hash, v);
}

std::optional<SignedCert> OneShotChecker::ToStoreSlow(const QuorumCert& prepared_qc) {
  enclave_->ChargeEcall();
  const View v = prepared_qc.view;
  if (v < vi_ || (v == vi_ && voted2_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(prepared_qc.sigs.size());
  if (!prepared_qc.Verify(enclave_->platform().suite(), kOsVote1,
                          static_cast<size_t>(f_) + 1)) {
    return std::nullopt;
  }
  AdvanceTo(v);
  voted2_ = true;
  prepv_ = v;
  preph_ = prepared_qc.hash;
  PersistState();
  return SignTuple(kOsCommit, prepared_qc.hash, v);
}

std::optional<SignedCert> OneShotChecker::ToNewView(View target) {
  enclave_->ChargeEcall();
  if (target <= vi_) {
    return std::nullopt;
  }
  AdvanceTo(target);
  PersistState();
  return SignTuple(kOsNewView, preph_, prepv_, /*aux=*/target);
}

std::optional<AccumulatorCert> OneShotChecker::ToAccum(
    const std::vector<SignedCert>& view_certs) {
  enclave_->ChargeEcall();
  if (view_certs.size() < static_cast<size_t>(f_) + 1) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(view_certs.size());
  std::vector<NodeId> ids;
  const SignedCert* best = nullptr;
  for (const SignedCert& cert : view_certs) {
    if (cert.aux != vi_) {
      return std::nullopt;
    }
    const Bytes digest = cert.Digest(kOsNewView);
    if (!enclave_->Verify(cert.sig, ByteView(digest.data(), digest.size()))) {
      return std::nullopt;
    }
    for (NodeId seen : ids) {
      if (seen == cert.sig.signer) {
        return std::nullopt;
      }
    }
    ids.push_back(cert.sig.signer);
    if (best == nullptr || cert.view > best->view) {
      best = &cert;
    }
  }
  AccumulatorCert acc;
  acc.hash = best->hash;
  acc.block_view = best->view;
  acc.current_view = vi_;
  acc.ids = std::move(ids);
  enclave_->ChargeSign();
  const Bytes digest = acc.Digest(kOsAcc);
  acc.sig = enclave_->Sign(ByteView(digest.data(), digest.size()));
  return acc;
}

}  // namespace achilles
