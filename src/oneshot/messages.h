// Wire messages of OneShot.
#ifndef SRC_ONESHOT_MESSAGES_H_
#define SRC_ONESHOT_MESSAGES_H_

#include "src/consensus/certificates.h"
#include "src/sim/process.h"

namespace achilles {

struct OsProposeMsg : SimMessage {
  const char* TraceName() const override { return "os_propose"; }
  BlockPtr block;
  SignedCert prep_cert;  // aux == 1 marks the fast path.
  size_t WireSize() const override { return block->WireSize() + prep_cert.WireSize(); }
};

struct OsVote1Msg : SimMessage {
  const char* TraceName() const override { return "os_vote1"; }
  SignedCert vote;
  size_t WireSize() const override { return vote.WireSize(); }
};

struct OsPreCommitMsg : SimMessage {
  const char* TraceName() const override { return "os_precommit"; }
  QuorumCert prepared_qc;
  size_t WireSize() const override { return prepared_qc.WireSize(); }
};

// Second-phase (slow) or single-phase (fast) commit vote.
struct OsCommitVoteMsg : SimMessage {
  const char* TraceName() const override { return "os_commit_vote"; }
  SignedCert vote;
  size_t WireSize() const override { return vote.WireSize(); }
};

struct OsDecideMsg : SimMessage {
  const char* TraceName() const override { return "os_decide"; }
  QuorumCert commit_qc;
  size_t WireSize() const override { return commit_qc.WireSize(); }
};

struct OsNewViewMsg : SimMessage {
  const char* TraceName() const override { return "os_new_view"; }
  SignedCert view_cert;
  size_t WireSize() const override { return view_cert.WireSize(); }
};

}  // namespace achilles

#endif  // SRC_ONESHOT_MESSAGES_H_
