#include "src/oneshot/replica.h"

#include <algorithm>

namespace achilles {

namespace {
constexpr View kPruneHorizon = 8;

template <typename MapT>
void PruneBelow(MapT& map, View horizon) {
  while (!map.empty() && map.begin()->first + kPruneHorizon < horizon) {
    map.erase(map.begin());
  }
}
}  // namespace

OneShotReplica::OneShotReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx) {
  if (initial_launch) {
    checker_ = std::make_unique<OneShotChecker>(&enclave(), ctx.params.n, ctx.params.f);
  } else {
    checker_ = OneShotChecker::Restore(&enclave(), ctx.params.n, ctx.params.f,
                                       ctx.params.break_counter_compare);
    RestoreStableCheckpoint();
  }
}

void OneShotReplica::OnStart() {
  if (checker_ == nullptr) {
    JournalEvent(obs::JournalKind::kHalt);
    return;
  }
  AdvanceViaNewView(std::max<View>(1, checker_->vi() + 1));
}

void OneShotReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (checker_ == nullptr) {
    return;
  }
  if (auto propose = std::dynamic_pointer_cast<const OsProposeMsg>(msg)) {
    OnPropose(from, propose);
  } else if (auto v1 = std::dynamic_pointer_cast<const OsVote1Msg>(msg)) {
    OnVote1(*v1);
  } else if (auto pc = std::dynamic_pointer_cast<const OsPreCommitMsg>(msg)) {
    OnPreCommit(from, pc);
  } else if (auto cv = std::dynamic_pointer_cast<const OsCommitVoteMsg>(msg)) {
    OnCommitVote(*cv);
  } else if (auto decide = std::dynamic_pointer_cast<const OsDecideMsg>(msg)) {
    OnDecide(from, decide);
  } else if (auto nv = std::dynamic_pointer_cast<const OsNewViewMsg>(msg)) {
    OnNewView(*nv);
  }
}

void OneShotReplica::AdvanceViaNewView(View target) {
  const auto cert = checker_->ToNewView(target);
  if (!cert) {
    return;
  }
  if (target > cur_view_) {
    cur_view_ = target;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  ArmViewTimer(cur_view_, consecutive_timeouts_);
  auto msg = std::make_shared<OsNewViewMsg>();
  msg->view_cert = *cert;
  SendTo(LeaderOf(target), msg);
}

void OneShotReplica::OnViewTimeout(View view) {
  if (checker_ == nullptr || view != cur_view_) {
    return;
  }
  ++consecutive_timeouts_;
  AdvanceViaNewView(cur_view_ + 1);
}

void OneShotReplica::EnterViewAfterCommit(View new_view,
                                          const std::shared_ptr<const OsDecideMsg>& msg) {
  if (new_view <= cur_view_) {
    return;
  }
  cur_view_ = new_view;
  JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);
  const NodeId next_leader = LeaderOf(new_view);
  if (next_leader == id()) {
    commit_certs_[new_view] = msg->commit_qc;
    TryProposeFast(new_view);
  } else {
    SendTo(next_leader, msg);
  }
}

void OneShotReplica::TryProposeFast(View w) {
  if (LeaderOf(w) != id() || w < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  auto it = commit_certs_.find(w);
  if (it == commit_certs_.end()) {
    return;
  }
  if (!EnsureAncestry(it->second.hash, LeaderOf(it->second.view))) {
    return;
  }
  const BlockPtr parent = store_.Get(it->second.hash);
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block = Block::Create(w, parent, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  const auto cert = checker_->ToPrepareFast(*block, it->second);
  if (!cert) {
    return;
  }
  ++fast_views_;
  FinishProposal(w, block, *cert, /*fast=*/true);
}

void OneShotReplica::TryProposeSlow(View w) {
  if (LeaderOf(w) != id() || w < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  auto it = view_certs_.find(w);
  if (it == view_certs_.end() || it->second.size() < quorum()) {
    return;
  }
  if (checker_->vi() < w) {
    AdvanceViaNewView(w);
    if (checker_->vi() != w) {
      return;
    }
  }
  const SignedCert* best = nullptr;
  for (const SignedCert& cert : it->second) {
    if (best == nullptr || cert.view > best->view) {
      best = &cert;
    }
  }
  if (!EnsureAncestry(best->hash, best->sig.signer)) {
    return;
  }
  const auto acc = checker_->ToAccum(it->second);
  if (!acc) {
    return;
  }
  const BlockPtr parent = store_.Get(best->hash);
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block = Block::Create(w, parent, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  const auto cert = checker_->ToPrepareSlow(*block, *acc);
  if (!cert) {
    return;
  }
  ++slow_views_;
  FinishProposal(w, block, *cert, /*fast=*/false);
}

void OneShotReplica::FinishProposal(View w, const BlockPtr& block, const SignedCert& cert,
                                    bool fast) {
  if (w > cur_view_) {
    cur_view_ = w;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  proposed_hash_[w] = block->hash;
  store_.Add(block);
  MarkProposed(block);
  PruneBelow(proposed_hash_, cur_view_);
  PruneBelow(view_certs_, cur_view_);
  PruneBelow(vote1_, cur_view_);
  PruneBelow(commit_votes_, cur_view_);
  PruneBelow(commit_certs_, cur_view_);
  auto msg = std::make_shared<OsProposeMsg>();
  msg->block = block;
  msg->prep_cert = cert;
  // Self-delivery on both paths: the leader stores (fast) or first-votes (slow) its own
  // block, keeping quorums reachable with f Byzantine backups.
  BroadcastToReplicas(msg, /*include_self=*/true);
  (void)fast;
}

void OneShotReplica::OnPropose(NodeId from, const std::shared_ptr<const OsProposeMsg>& msg) {
  if (msg->block == nullptr) {
    return;
  }
  const View v = msg->prep_cert.view;
  if (v < checker_->vi() || msg->block->hash != msg->prep_cert.hash ||
      msg->block->view != v) {
    return;
  }
  if (!AcceptBlock(msg->block)) {
    return;
  }
  if (!EnsureAncestry(msg->block->hash, from)) {
    pending_proposals_.emplace_back(from, msg);
    return;
  }
  if (msg->prep_cert.aux == 1) {
    // Fast path: single-phase store.
    const auto vote = checker_->ToStoreFast(msg->prep_cert);
    if (!vote) {
      return;
    }
    if (v > cur_view_) {
      cur_view_ = v;
      JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
    }
    consecutive_timeouts_ = 0;
    ArmViewTimer(cur_view_, 0);
    auto out = std::make_shared<OsCommitVoteMsg>();
    out->vote = *vote;
    SendTo(LeaderOf(v), out);
    return;
  }
  const auto vote = checker_->ToVote(msg->prep_cert);
  if (!vote) {
    return;
  }
  if (v > cur_view_) {
    cur_view_ = v;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);
  auto out = std::make_shared<OsVote1Msg>();
  out->vote = *vote;
  SendTo(LeaderOf(v), out);
}

void OneShotReplica::OnVote1(const OsVote1Msg& msg) {
  const View v = msg.vote.view;
  if (LeaderOf(v) != id() || highest_precommit_ >= v) {
    return;
  }
  auto proposed = proposed_hash_.find(v);
  if (proposed == proposed_hash_.end() || msg.vote.hash != proposed->second) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.vote.Digest(kOsVote1);
  if (!platform().suite().Verify(msg.vote.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& votes = vote1_[v];
  for (const SignedCert& existing : votes) {
    if (existing.sig.signer == msg.vote.sig.signer) {
      return;
    }
  }
  votes.push_back(msg.vote);
  CritNote(0, v);
  if (votes.size() < quorum()) {
    return;
  }
  CritJoin(0, v);
  highest_precommit_ = v;
  auto out = std::make_shared<OsPreCommitMsg>();
  out->prepared_qc.hash = proposed->second;
  out->prepared_qc.view = v;
  for (const SignedCert& vote : votes) {
    out->prepared_qc.sigs.push_back(vote.sig);
  }
  BroadcastToReplicas(out, /*include_self=*/true);
}

void OneShotReplica::OnPreCommit(NodeId from,
                                 const std::shared_ptr<const OsPreCommitMsg>& msg) {
  const QuorumCert& qc = msg->prepared_qc;
  if (qc.view < checker_->vi()) {
    return;
  }
  if (store_.Get(qc.hash) == nullptr) {
    RequestBlock(from, qc.hash);
    return;
  }
  const auto vote = checker_->ToStoreSlow(qc);
  if (!vote) {
    return;
  }
  auto out = std::make_shared<OsCommitVoteMsg>();
  out->vote = *vote;
  SendTo(LeaderOf(qc.view), out);
}

void OneShotReplica::OnCommitVote(const OsCommitVoteMsg& msg) {
  const View v = msg.vote.view;
  if (LeaderOf(v) != id() || highest_decided_ >= v) {
    return;
  }
  auto proposed = proposed_hash_.find(v);
  if (proposed == proposed_hash_.end() || msg.vote.hash != proposed->second) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.vote.Digest(kOsCommit);
  if (!platform().suite().Verify(msg.vote.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& votes = commit_votes_[v];
  for (const SignedCert& existing : votes) {
    if (existing.sig.signer == msg.vote.sig.signer) {
      return;
    }
  }
  votes.push_back(msg.vote);
  CritNote(1, v);
  if (votes.size() < quorum()) {
    return;
  }
  CritJoin(1, v);
  highest_decided_ = v;
  auto out = std::make_shared<OsDecideMsg>();
  out->commit_qc.hash = proposed->second;
  out->commit_qc.view = v;
  for (const SignedCert& vote : votes) {
    out->commit_qc.sigs.push_back(vote.sig);
  }
  BroadcastToReplicas(out, /*include_self=*/true);
}

void OneShotReplica::OnDecide(NodeId from, const std::shared_ptr<const OsDecideMsg>& msg) {
  const QuorumCert& qc = msg->commit_qc;
  BlockPtr block = store_.Get(qc.hash);
  if (block != nullptr && block->height <= last_committed_height_) {
    return;
  }
  ChargeVerifyBatch(qc.sigs.size());
  if (!qc.Verify(platform().suite(), kOsCommit, quorum())) {
    return;
  }
  if (block == nullptr) {
    pending_decides_.emplace_back(from, msg);
    RequestBlock(from, qc.hash);
    return;
  }
  if (!EnsureAncestry(qc.hash, from) && block->height <= last_committed_height_ + 64) {
    pending_decides_.emplace_back(from, msg);
    return;
  }
  CommitChain(block, qc.WireSize());
  if (LeaderOf(qc.view + 1) == id()) {
    commit_certs_[qc.view + 1] = qc;
    TryProposeFast(qc.view + 1);
  }
  EnterViewAfterCommit(qc.view + 1, msg);
}

void OneShotReplica::OnNewView(const OsNewViewMsg& msg) {
  const View w = msg.view_cert.aux;
  if (LeaderOf(w) != id() || w + kPruneHorizon < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.view_cert.Digest(kOsNewView);
  if (!platform().suite().Verify(msg.view_cert.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& certs = view_certs_[w];
  for (const SignedCert& existing : certs) {
    if (existing.sig.signer == msg.view_cert.sig.signer) {
      return;
    }
  }
  certs.push_back(msg.view_cert);
  TryProposeSlow(w);
}

void OneShotReplica::OnBlocksSynced() {
  auto proposals = std::move(pending_proposals_);
  pending_proposals_.clear();
  for (auto& [from, msg] : proposals) {
    OnPropose(from, msg);
  }
  auto decides = std::move(pending_decides_);
  pending_decides_.clear();
  for (auto& [from, msg] : decides) {
    OnDecide(from, msg);
  }
  TryProposeFast(cur_view_);
  TryProposeSlow(cur_view_);
}

}  // namespace achilles
