// OneShot's trusted component: view-adapting. On the piggyback fast path (the leader holds
// the previous view's commit QC) backups store-and-vote in a single phase — four steps end
// to end, one counter write per node in -R. Entering a view through NEW-VIEW certificates
// falls back to Damysus-style two-phase voting — six steps, two writes per node.
#ifndef SRC_ONESHOT_CHECKER_H_
#define SRC_ONESHOT_CHECKER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/consensus/certificates.h"
#include "src/consensus/types.h"
#include "src/tee/enclave.h"

namespace achilles {

inline constexpr const char* kOsPrep = "oneshot/PREP";
inline constexpr const char* kOsVote1 = "oneshot/VOTE1";
inline constexpr const char* kOsCommit = "oneshot/COMMIT";  // Fast store votes AND slow vote2.
inline constexpr const char* kOsNewView = "oneshot/NEW-VIEW";
inline constexpr const char* kOsAcc = "oneshot/ACC";

class OneShotChecker {
 public:
  OneShotChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f);

  // Restore-from-backend after reboot (same semantics as DamysusChecker::Restore).
  static std::unique_ptr<OneShotChecker> Restore(EnclaveRuntime* enclave, uint32_t n,
                                                 uint32_t f,
                                                 bool break_restore_verify = false);

  View vi() const { return vi_; }
  View prepv() const { return prepv_; }
  const Hash256& preph() const { return preph_; }
  // Backend-assigned state version; equals the persistent counter in -R under the local
  // backend (chaos counter oracle).
  uint64_t version() const { return version_; }

  // Leader, fast path: certify a block extending the block committed at commit_qc.view.
  std::optional<SignedCert> ToPrepareFast(const Block& b, const QuorumCert& commit_qc);
  // Leader, slow path: certify a block extending the accumulator's selection.
  std::optional<SignedCert> ToPrepareSlow(const Block& b, const AccumulatorCert& acc);

  // Backup, fast path: single-phase store+vote on the leader's certificate.
  std::optional<SignedCert> ToStoreFast(const SignedCert& prep_cert);

  // Slow path, two phases.
  std::optional<SignedCert> ToVote(const SignedCert& prep_cert);
  std::optional<SignedCert> ToStoreSlow(const QuorumCert& prepared_qc);

  std::optional<SignedCert> ToNewView(View target);
  std::optional<AccumulatorCert> ToAccum(const std::vector<SignedCert>& view_certs);

 private:
  OneShotChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f, bool restored);
  void PersistState();
  void AdvanceTo(View v);
  SignedCert SignTuple(const char* domain, const Hash256& hash, View view, uint64_t aux = 0);

  EnclaveRuntime* enclave_;
  uint32_t n_;
  uint32_t f_;

  View vi_ = 0;
  bool flag_ = false;
  bool voted1_ = false;
  bool voted2_ = false;
  View prepv_ = 0;
  Hash256 preph_;
  uint64_t version_ = 0;
};

}  // namespace achilles

#endif  // SRC_ONESHOT_CHECKER_H_
