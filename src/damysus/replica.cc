#include "src/damysus/replica.h"

#include <algorithm>

namespace achilles {

namespace {
constexpr View kPruneHorizon = 8;

template <typename MapT>
void PruneBelow(MapT& map, View horizon) {
  while (!map.empty() && map.begin()->first + kPruneHorizon < horizon) {
    map.erase(map.begin());
  }
}
}  // namespace

DamysusReplica::DamysusReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx) {
  if (initial_launch) {
    checker_ = std::make_unique<DamysusChecker>(&enclave(), ctx.params.n, ctx.params.f);
  } else {
    // Local restore: sealed state (+ counter check in -R). nullptr => crash-stop.
    checker_ = DamysusChecker::Restore(&enclave(), ctx.params.n, ctx.params.f,
                                       ctx.params.break_counter_compare);
    RestoreStableCheckpoint();
  }
}

void DamysusReplica::OnStart() {
  if (checker_ == nullptr) {
    JournalEvent(obs::JournalKind::kHalt);
    return;  // Halted: rollback detected (or no sealed state to restore).
  }
  if (checker_->vi() == 0) {
    AdvanceViaNewView(1);
  } else {
    // Restored mid-history: rejoin by moving one view ahead.
    cur_view_ = checker_->vi();
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
    AdvanceViaNewView(cur_view_ + 1);
  }
}

void DamysusReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (checker_ == nullptr) {
    return;
  }
  if (auto propose = std::dynamic_pointer_cast<const DamProposeMsg>(msg)) {
    OnPropose(from, propose);
  } else if (auto v1 = std::dynamic_pointer_cast<const DamVote1Msg>(msg)) {
    OnVote1(*v1);
  } else if (auto pc = std::dynamic_pointer_cast<const DamPreCommitMsg>(msg)) {
    OnPreCommit(from, pc);
  } else if (auto v2 = std::dynamic_pointer_cast<const DamVote2Msg>(msg)) {
    OnVote2(*v2);
  } else if (auto decide = std::dynamic_pointer_cast<const DamDecideMsg>(msg)) {
    OnDecide(from, decide);
  } else if (auto nv = std::dynamic_pointer_cast<const DamNewViewMsg>(msg)) {
    OnNewView(*nv);
  }
}

void DamysusReplica::AdvanceViaNewView(View target) {
  const auto cert = checker_->TdNewView(target);
  if (!cert) {
    return;
  }
  if (target > cur_view_) {
    cur_view_ = target;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  ArmViewTimer(cur_view_, consecutive_timeouts_);
  auto msg = std::make_shared<DamNewViewMsg>();
  msg->view_cert = *cert;
  SendTo(LeaderOf(target), msg);
}

void DamysusReplica::OnViewTimeout(View view) {
  if (checker_ == nullptr || view != cur_view_) {
    return;
  }
  ++consecutive_timeouts_;
  AdvanceViaNewView(cur_view_ + 1);
}

void DamysusReplica::EnterViewAfterCommit(View new_view,
                                          const std::shared_ptr<const DamDecideMsg>& msg) {
  if (new_view <= cur_view_) {
    return;
  }
  cur_view_ = new_view;
  JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);
  const NodeId next_leader = LeaderOf(new_view);
  if (next_leader == id()) {
    commit_certs_[new_view] = msg->commit_qc;
    TryProposeFromCommit(new_view);
  } else {
    SendTo(next_leader, msg);
  }
}

void DamysusReplica::TryProposeFromCommit(View w) {
  if (LeaderOf(w) != id() || w < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  auto it = commit_certs_.find(w);
  if (it == commit_certs_.end()) {
    return;
  }
  if (!EnsureAncestry(it->second.hash, LeaderOf(it->second.view))) {
    return;
  }
  BuildAndBroadcastProposal(w, store_.Get(it->second.hash), nullptr, &it->second);
}

void DamysusReplica::TryProposeFromViewCerts(View w) {
  if (LeaderOf(w) != id() || w < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  auto it = view_certs_.find(w);
  if (it == view_certs_.end() || it->second.size() < quorum()) {
    return;
  }
  if (checker_->vi() < w) {
    AdvanceViaNewView(w);
    if (checker_->vi() != w) {
      return;
    }
  }
  const SignedCert* best = nullptr;
  for (const SignedCert& cert : it->second) {
    if (best == nullptr || cert.view > best->view) {
      best = &cert;
    }
  }
  if (!EnsureAncestry(best->hash, best->sig.signer)) {
    return;
  }
  const auto acc = checker_->TdAccum(it->second);
  if (!acc) {
    return;
  }
  BuildAndBroadcastProposal(w, store_.Get(best->hash), &*acc, nullptr);
}

void DamysusReplica::BuildAndBroadcastProposal(View w, const BlockPtr& parent,
                                               const AccumulatorCert* acc,
                                               const QuorumCert* commit_qc) {
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block = Block::Create(w, parent, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  std::optional<SignedCert> cert;
  if (acc != nullptr) {
    cert = checker_->TdPrepare(*block, *acc);
  } else {
    cert = checker_->TdPrepare(*block, *commit_qc);
  }
  if (!cert) {
    return;
  }
  if (w > cur_view_) {
    cur_view_ = w;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  proposed_hash_[w] = block->hash;
  store_.Add(block);
  MarkProposed(block);
  PruneBelow(proposed_hash_, cur_view_);
  PruneBelow(view_certs_, cur_view_);
  PruneBelow(vote1_, cur_view_);
  PruneBelow(vote2_, cur_view_);
  PruneBelow(commit_certs_, cur_view_);

  auto msg = std::make_shared<DamProposeMsg>();
  msg->block = block;
  msg->prep_cert = *cert;
  // The leader votes for its own block too (self-delivery): with f Byzantine backups the
  // f+1 first-phase quorum must be reachable from the leader plus f correct backups.
  BroadcastToReplicas(msg, /*include_self=*/true);
}

void DamysusReplica::OnPropose(NodeId from,
                               const std::shared_ptr<const DamProposeMsg>& msg) {
  if (msg->block == nullptr) {
    return;
  }
  const View v = msg->prep_cert.view;
  if (v < checker_->vi() || msg->block->hash != msg->prep_cert.hash ||
      msg->block->view != v) {
    return;
  }
  if (!AcceptBlock(msg->block)) {
    return;
  }
  if (!EnsureAncestry(msg->block->hash, from)) {
    pending_proposals_.emplace_back(from, msg);
    return;
  }
  const auto vote = checker_->TdVote(msg->prep_cert);
  if (!vote) {
    return;
  }
  if (v > cur_view_) {
    cur_view_ = v;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);
  auto out = std::make_shared<DamVote1Msg>();
  out->vote = *vote;
  SendTo(LeaderOf(v), out);
}

void DamysusReplica::OnVote1(const DamVote1Msg& msg) {
  const View v = msg.vote.view;
  if (LeaderOf(v) != id() || highest_precommit_ >= v) {
    return;
  }
  auto proposed = proposed_hash_.find(v);
  if (proposed == proposed_hash_.end() || msg.vote.hash != proposed->second) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.vote.Digest(kDamVote1);
  if (!platform().suite().Verify(msg.vote.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& votes = vote1_[v];
  for (const SignedCert& existing : votes) {
    if (existing.sig.signer == msg.vote.sig.signer) {
      return;
    }
  }
  votes.push_back(msg.vote);
  CritNote(0, v);
  if (votes.size() < quorum()) {
    return;
  }
  CritJoin(0, v);
  highest_precommit_ = v;
  auto out = std::make_shared<DamPreCommitMsg>();
  out->prepared_qc.hash = proposed->second;
  out->prepared_qc.view = v;
  for (const SignedCert& vote : votes) {
    out->prepared_qc.sigs.push_back(vote.sig);
  }
  BroadcastToReplicas(out, /*include_self=*/true);
}

void DamysusReplica::OnPreCommit(NodeId from,
                                 const std::shared_ptr<const DamPreCommitMsg>& msg) {
  const QuorumCert& qc = msg->prepared_qc;
  if (qc.view < checker_->vi()) {
    return;
  }
  if (store_.Get(qc.hash) == nullptr) {
    RequestBlock(from, qc.hash);
    return;  // Vote2 requires the block; rare (propose lost), recovered via timeout.
  }
  const auto vote = checker_->TdStore(qc);
  if (!vote) {
    return;
  }
  auto out = std::make_shared<DamVote2Msg>();
  out->vote = *vote;
  SendTo(LeaderOf(qc.view), out);
}

void DamysusReplica::OnVote2(const DamVote2Msg& msg) {
  const View v = msg.vote.view;
  if (LeaderOf(v) != id() || highest_decided_ >= v) {
    return;
  }
  auto proposed = proposed_hash_.find(v);
  if (proposed == proposed_hash_.end() || msg.vote.hash != proposed->second) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.vote.Digest(kDamVote2);
  if (!platform().suite().Verify(msg.vote.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& votes = vote2_[v];
  for (const SignedCert& existing : votes) {
    if (existing.sig.signer == msg.vote.sig.signer) {
      return;
    }
  }
  votes.push_back(msg.vote);
  CritNote(1, v);
  if (votes.size() < quorum()) {
    return;
  }
  CritJoin(1, v);
  highest_decided_ = v;
  auto out = std::make_shared<DamDecideMsg>();
  out->commit_qc.hash = proposed->second;
  out->commit_qc.view = v;
  for (const SignedCert& vote : votes) {
    out->commit_qc.sigs.push_back(vote.sig);
  }
  BroadcastToReplicas(out, /*include_self=*/true);
}

void DamysusReplica::OnDecide(NodeId from, const std::shared_ptr<const DamDecideMsg>& msg) {
  const QuorumCert& qc = msg->commit_qc;
  BlockPtr block = store_.Get(qc.hash);
  if (block != nullptr && block->height <= last_committed_height_) {
    return;
  }
  ChargeVerifyBatch(qc.sigs.size());
  if (!qc.Verify(platform().suite(), kDamVote2, quorum())) {
    return;
  }
  if (block == nullptr) {
    pending_decides_.emplace_back(from, msg);
    RequestBlock(from, qc.hash);
    return;
  }
  if (!EnsureAncestry(qc.hash, from) && block->height <= last_committed_height_ + 64) {
    pending_decides_.emplace_back(from, msg);
    return;
  }
  CommitChain(block, qc.WireSize());
  if (latest_committed_.block == nullptr || block->view > latest_committed_.block->view) {
    latest_committed_ = StoredBlock{block, qc};
  }
  if (LeaderOf(qc.view + 1) == id()) {
    commit_certs_[qc.view + 1] = qc;
    TryProposeFromCommit(qc.view + 1);
  }
  EnterViewAfterCommit(qc.view + 1, msg);
}

void DamysusReplica::OnNewView(const DamNewViewMsg& msg) {
  const View w = msg.view_cert.aux;
  if (LeaderOf(w) != id() || w + kPruneHorizon < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.view_cert.Digest(kDamNewView);
  if (!platform().suite().Verify(msg.view_cert.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& certs = view_certs_[w];
  for (const SignedCert& existing : certs) {
    if (existing.sig.signer == msg.view_cert.sig.signer) {
      return;
    }
  }
  certs.push_back(msg.view_cert);
  TryProposeFromViewCerts(w);
}

void DamysusReplica::OnBlocksSynced() {
  auto proposals = std::move(pending_proposals_);
  pending_proposals_.clear();
  for (auto& [from, msg] : proposals) {
    OnPropose(from, msg);
  }
  auto decides = std::move(pending_decides_);
  pending_decides_.clear();
  for (auto& [from, msg] : decides) {
    OnDecide(from, msg);
  }
  TryProposeFromCommit(cur_view_);
  TryProposeFromViewCerts(cur_view_);
}

}  // namespace achilles
