#include "src/damysus/checker.h"

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr const char* kSealSlot = "damysus-checker";
}

DamysusChecker::DamysusChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f)
    : DamysusChecker(enclave, n, f, /*restored=*/false) {
  preph_ = Block::Genesis()->hash;
  PersistState();
}

DamysusChecker::DamysusChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f,
                               bool /*restored*/)
    : enclave_(enclave), n_(n), f_(f) {
  preph_ = Block::Genesis()->hash;
}

std::unique_ptr<DamysusChecker> DamysusChecker::Restore(EnclaveRuntime* enclave, uint32_t n,
                                                        uint32_t f,
                                                        bool break_restore_verify) {
  enclave->ChargeEcall();
  // The defense backend serves the surviving record with its freshness verdict: counter
  // compare under the local backend, peer copies/certificates under the quorum ones.
  // `break_restore_verify` skips the freshness check (chaos oracle self-tests only).
  persist::OpenResult opened = enclave->defense().Open(kSealSlot, !break_restore_verify);
  if (opened.status == persist::OpenStatus::kRolledBack) {
    // Rollback detected (stale version vs the backend's proven floor) -> refuse to run.
    enclave->platform().host().JournalEvent(obs::JournalKind::kRollbackReject,
                                            opened.version, opened.expected_version,
                                            kSealSlot);
    return nullptr;
  }
  if (!opened.record) {
    return nullptr;  // Nothing to restore (or forged blob).
  }
  ByteReader r(ByteView(opened.record->data(), opened.record->size()));
  const auto vi = r.U64();
  const auto flags = r.U8();
  const auto prepv = r.U64();
  const auto preph = r.Raw(32);
  if (!vi || !flags || !prepv || !preph || r.remaining() != 0) {
    return nullptr;
  }
  auto checker =
      std::unique_ptr<DamysusChecker>(new DamysusChecker(enclave, n, f, /*restored=*/true));
  checker->vi_ = *vi;
  checker->flag_ = (*flags & 1) != 0;
  checker->voted1_ = (*flags & 2) != 0;
  checker->voted2_ = (*flags & 4) != 0;
  checker->prepv_ = *prepv;
  std::copy(preph->begin(), preph->end(), checker->preph_.begin());
  checker->version_ = opened.version;
  return checker;
}

void DamysusChecker::PersistState() {
  ByteWriter w;
  w.U64(vi_);
  w.U8(static_cast<uint8_t>((flag_ ? 1 : 0) | (voted1_ ? 2 : 0) | (voted2_ ? 4 : 0)));
  w.U64(prepv_);
  w.Raw(ByteView(preph_.data(), preph_.size()));
  // The backend assigns the version, appends it to the sealed blob, and pays the defense
  // cost: the counter write in -R (the 20-97 ms critical-path stall), the peer-quorum
  // round trip under rollbaccine/healer.
  version_ = enclave_->defense().Persist(kSealSlot, ByteView(w.bytes().data(), w.bytes().size()));
}

void DamysusChecker::AdvanceTo(View v) {
  if (v > vi_) {
    vi_ = v;
    flag_ = false;
    voted1_ = false;
    voted2_ = false;
  }
}

std::optional<SignedCert> DamysusChecker::TdPrepare(const Block& b,
                                                    const AccumulatorCert& acc) {
  enclave_->ChargeEcall();
  if (acc.current_view != vi_ || flag_ ||
      acc.sig.signer != enclave_->platform().node_id()) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = acc.Digest(kDamAcc);
  if (!enclave_->Verify(acc.sig, ByteView(digest.data(), digest.size())) ||
      b.parent != acc.hash || b.view != vi_) {
    return std::nullopt;
  }
  flag_ = true;
  PersistState();
  SignedCert cert;
  cert.hash = b.hash;
  cert.view = vi_;
  enclave_->ChargeSign();
  const Bytes d = cert.Digest(kDamPrep);
  cert.sig = enclave_->Sign(ByteView(d.data(), d.size()));
  return cert;
}

std::optional<SignedCert> DamysusChecker::TdPrepare(const Block& b,
                                                    const QuorumCert& commit_qc) {
  enclave_->ChargeEcall();
  const View new_view = commit_qc.view + 1;
  if (new_view < vi_ || (new_view == vi_ && flag_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(commit_qc.sigs.size());
  if (!commit_qc.Verify(enclave_->platform().suite(), kDamVote2,
                        static_cast<size_t>(f_) + 1) ||
      b.parent != commit_qc.hash || b.view != new_view) {
    return std::nullopt;
  }
  AdvanceTo(new_view);
  flag_ = true;
  PersistState();
  SignedCert cert;
  cert.hash = b.hash;
  cert.view = vi_;
  enclave_->ChargeSign();
  const Bytes d = cert.Digest(kDamPrep);
  cert.sig = enclave_->Sign(ByteView(d.data(), d.size()));
  return cert;
}

std::optional<SignedCert> DamysusChecker::TdVote(const SignedCert& prep_cert) {
  enclave_->ChargeEcall();
  const View v = prep_cert.view;
  if (v < vi_ || (v == vi_ && voted1_) ||
      prep_cert.sig.signer != LeaderOfView(v, n_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = prep_cert.Digest(kDamPrep);
  if (!enclave_->Verify(prep_cert.sig, ByteView(digest.data(), digest.size()))) {
    return std::nullopt;
  }
  AdvanceTo(v);
  voted1_ = true;
  PersistState();
  SignedCert vote;
  vote.hash = prep_cert.hash;
  vote.view = v;
  enclave_->ChargeSign();
  const Bytes d = vote.Digest(kDamVote1);
  vote.sig = enclave_->Sign(ByteView(d.data(), d.size()));
  return vote;
}

std::optional<SignedCert> DamysusChecker::TdStore(const QuorumCert& prepared_qc) {
  enclave_->ChargeEcall();
  const View v = prepared_qc.view;
  if (v < vi_ || (v == vi_ && voted2_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(prepared_qc.sigs.size());
  if (!prepared_qc.Verify(enclave_->platform().suite(), kDamVote1,
                          static_cast<size_t>(f_) + 1)) {
    return std::nullopt;
  }
  AdvanceTo(v);
  voted2_ = true;
  prepv_ = v;
  preph_ = prepared_qc.hash;
  PersistState();
  SignedCert vote;
  vote.hash = prepared_qc.hash;
  vote.view = v;
  enclave_->ChargeSign();
  const Bytes d = vote.Digest(kDamVote2);
  vote.sig = enclave_->Sign(ByteView(d.data(), d.size()));
  return vote;
}

std::optional<SignedCert> DamysusChecker::TdNewView(View target) {
  enclave_->ChargeEcall();
  if (target <= vi_) {
    return std::nullopt;
  }
  AdvanceTo(target);
  PersistState();
  SignedCert cert;
  cert.hash = preph_;
  cert.view = prepv_;
  cert.aux = target;
  enclave_->ChargeSign();
  const Bytes d = cert.Digest(kDamNewView);
  cert.sig = enclave_->Sign(ByteView(d.data(), d.size()));
  return cert;
}

std::optional<AccumulatorCert> DamysusChecker::TdAccum(
    const std::vector<SignedCert>& view_certs) {
  enclave_->ChargeEcall();
  if (view_certs.size() < static_cast<size_t>(f_) + 1) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(view_certs.size());
  std::vector<NodeId> ids;
  const SignedCert* best = nullptr;
  for (const SignedCert& cert : view_certs) {
    if (cert.aux != vi_) {
      return std::nullopt;
    }
    const Bytes digest = cert.Digest(kDamNewView);
    if (!enclave_->Verify(cert.sig, ByteView(digest.data(), digest.size()))) {
      return std::nullopt;
    }
    for (NodeId seen : ids) {
      if (seen == cert.sig.signer) {
        return std::nullopt;
      }
    }
    ids.push_back(cert.sig.signer);
    if (best == nullptr || cert.view > best->view) {
      best = &cert;
    }
  }
  AccumulatorCert acc;
  acc.hash = best->hash;
  acc.block_view = best->view;
  acc.current_view = vi_;
  acc.ids = std::move(ids);
  enclave_->ChargeSign();
  const Bytes digest = acc.Digest(kDamAcc);
  acc.sig = enclave_->Sign(ByteView(digest.data(), digest.size()));
  return acc;
}

}  // namespace achilles
