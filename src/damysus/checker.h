// Damysus' trusted components (paper Appendix A): a CHECKER tracking the last *prepared*
// block (two voting phases per view) and an ACCUMULATOR for leader parent selection.
//
// Rollback handling goes through the pluggable defense backend (src/storage/defense.h):
// the checker persists its state after every mutation and the backend binds a monotonic
// version to the sealed blob. Under the local backend the version is checked against the
// persistent counter in -R; under the quorum backends (--defense rollbaccine/healer) peer
// replicas vouch for freshness instead. On restart a detected rollback makes the enclave
// refuse to run (crash-stop), except that rollbaccine repairs from the freshest peer copy.
// Without any freshness source (plain Damysus, local backend, no counter), a rolled-back
// seal is accepted silently — the vulnerability the paper's §2.1 describes, demonstrated
// by tests/damysus_test.cc.
#ifndef SRC_DAMYSUS_CHECKER_H_
#define SRC_DAMYSUS_CHECKER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/consensus/certificates.h"
#include "src/consensus/types.h"
#include "src/tee/enclave.h"

namespace achilles {

inline constexpr const char* kDamPrep = "damysus/PREP";        // Leader block certificates.
inline constexpr const char* kDamVote1 = "damysus/VOTE1";      // Prepare-phase votes.
inline constexpr const char* kDamVote2 = "damysus/VOTE2";      // Pre-commit votes / commit QC.
inline constexpr const char* kDamNewView = "damysus/NEW-VIEW";
inline constexpr const char* kDamAcc = "damysus/ACC";

class DamysusChecker {
 public:
  // Fresh genesis-time checker.
  DamysusChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f);

  // Restores a checker from the defense backend after a reboot. Returns nullptr when the
  // state is unusable: missing/forged seal, or a detected rollback (seal version behind
  // the backend's freshness floor), upon which the replica refuses to participate.
  // `break_restore_verify` skips the freshness check — a deliberately-broken variant used
  // only by the chaos harness to prove its oracles catch the silently-accepted rollback.
  static std::unique_ptr<DamysusChecker> Restore(EnclaveRuntime* enclave, uint32_t n,
                                                 uint32_t f,
                                                 bool break_restore_verify = false);

  View vi() const { return vi_; }
  View prepv() const { return prepv_; }
  const Hash256& preph() const { return preph_; }
  bool proposed_flag() const { return flag_; }
  // Backend-assigned state version; in -R (local backend) this equals the persistent
  // counter after every mutation (the invariant the chaos harness's counter oracle
  // checks); under quorum backends it is the version the peer quorum vouches for.
  uint64_t version() const { return version_; }

  // Leader: certify a block for the current view. Justified either by an accumulator over
  // f+1 NEW-VIEW certificates or by a commit QC of the previous view (chained fast path).
  std::optional<SignedCert> TdPrepare(const Block& b, const AccumulatorCert& acc);
  std::optional<SignedCert> TdPrepare(const Block& b, const QuorumCert& commit_qc);

  // Backup: first-phase vote on the leader's block certificate.
  std::optional<SignedCert> TdVote(const SignedCert& prep_cert);

  // Any node: second-phase vote; records the block as prepared. `prepared_qc` combines f+1
  // first-phase votes.
  std::optional<SignedCert> TdStore(const QuorumCert& prepared_qc);

  // Timeout path: jump to `target` view, emitting the NEW-VIEW certificate.
  std::optional<SignedCert> TdNewView(View target);

  // Stateless accumulator over NEW-VIEW certificates for the current view.
  std::optional<AccumulatorCert> TdAccum(const std::vector<SignedCert>& view_certs);

 private:
  DamysusChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f, bool restored);

  // Persists the state through the defense backend (which assigns version_).
  void PersistState();
  void AdvanceTo(View v);

  EnclaveRuntime* enclave_;
  uint32_t n_;
  uint32_t f_;

  View vi_ = 0;
  bool flag_ = false;    // Leader proposed in vi.
  bool voted1_ = false;  // First-phase vote cast in vi.
  bool voted2_ = false;  // Second-phase vote cast in vi.
  View prepv_ = 0;
  Hash256 preph_;
  uint64_t version_ = 0;  // Monotonic state version assigned by the defense backend.
};

}  // namespace achilles

#endif  // SRC_DAMYSUS_CHECKER_H_
