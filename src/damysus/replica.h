// Chained Damysus replica (Appendix A of the Achilles paper): NEW-VIEW, PREPARE (propose +
// first votes), PRE-COMMIT (QC + second votes), DECIDE. Six end-to-end steps vs Achilles'
// four. With a counter-equipped platform this is Damysus-R: every checker mutation stalls
// on a persistent counter write.
#ifndef SRC_DAMYSUS_REPLICA_H_
#define SRC_DAMYSUS_REPLICA_H_

#include <map>
#include <vector>

#include "src/consensus/replica_base.h"
#include "src/damysus/checker.h"
#include "src/damysus/messages.h"

namespace achilles {

class DamysusReplica : public ReplicaBase {
 public:
  DamysusReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;

  // True when restore after reboot failed (detected rollback in -R): crash-stop.
  bool halted() const { return checker_ == nullptr; }
  View current_view() const { return cur_view_; }
  const DamysusChecker* checker() const { return checker_.get(); }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.halted = halted();
    if (checker_ != nullptr) {
      snap.view = checker_->vi();
      snap.trusted_version = checker_->version();
    }
    return snap;
  }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;

 private:
  void OnPropose(NodeId from, const std::shared_ptr<const DamProposeMsg>& msg);
  void OnVote1(const DamVote1Msg& msg);
  void OnPreCommit(NodeId from, const std::shared_ptr<const DamPreCommitMsg>& msg);
  void OnVote2(const DamVote2Msg& msg);
  void OnDecide(NodeId from, const std::shared_ptr<const DamDecideMsg>& msg);
  void OnNewView(const DamNewViewMsg& msg);

  void TryProposeFromCommit(View w);
  void TryProposeFromViewCerts(View w);
  void BuildAndBroadcastProposal(View w, const BlockPtr& parent,
                                 const AccumulatorCert* acc, const QuorumCert* commit_qc);
  void AdvanceViaNewView(View target);
  void EnterViewAfterCommit(View new_view, const std::shared_ptr<const DamDecideMsg>& msg);

  std::unique_ptr<DamysusChecker> checker_;
  View cur_view_ = 0;
  uint32_t consecutive_timeouts_ = 0;

  struct StoredBlock {
    BlockPtr block;
    QuorumCert commit_qc;
  };
  StoredBlock latest_committed_;

  std::map<View, std::vector<SignedCert>> vote1_;
  std::map<View, std::vector<SignedCert>> vote2_;
  std::map<View, std::vector<SignedCert>> view_certs_;
  std::map<View, Hash256> proposed_hash_;
  std::map<View, QuorumCert> commit_certs_;
  View highest_precommit_ = 0;
  View highest_decided_ = 0;

  std::vector<std::pair<NodeId, std::shared_ptr<const DamProposeMsg>>> pending_proposals_;
  std::vector<std::pair<NodeId, std::shared_ptr<const DamDecideMsg>>> pending_decides_;
};

}  // namespace achilles

#endif  // SRC_DAMYSUS_REPLICA_H_
