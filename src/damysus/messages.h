// Wire messages of (chained) Damysus: two voting phases per view.
#ifndef SRC_DAMYSUS_MESSAGES_H_
#define SRC_DAMYSUS_MESSAGES_H_

#include "src/consensus/certificates.h"
#include "src/sim/process.h"

namespace achilles {

struct DamProposeMsg : SimMessage {
  const char* TraceName() const override { return "dam_propose"; }
  BlockPtr block;
  SignedCert prep_cert;
  size_t WireSize() const override { return block->WireSize() + prep_cert.WireSize(); }
};

struct DamVote1Msg : SimMessage {
  const char* TraceName() const override { return "dam_vote1"; }
  SignedCert vote;
  size_t WireSize() const override { return vote.WireSize(); }
};

// Leader -> all: prepared QC (f+1 first-phase votes).
struct DamPreCommitMsg : SimMessage {
  const char* TraceName() const override { return "dam_precommit"; }
  QuorumCert prepared_qc;
  size_t WireSize() const override { return prepared_qc.WireSize(); }
};

struct DamVote2Msg : SimMessage {
  const char* TraceName() const override { return "dam_vote2"; }
  SignedCert vote;
  size_t WireSize() const override { return vote.WireSize(); }
};

// Leader -> all (and node -> next leader): commit QC (f+1 second-phase votes).
struct DamDecideMsg : SimMessage {
  const char* TraceName() const override { return "dam_decide"; }
  QuorumCert commit_qc;
  size_t WireSize() const override { return commit_qc.WireSize(); }
};

struct DamNewViewMsg : SimMessage {
  const char* TraceName() const override { return "dam_new_view"; }
  SignedCert view_cert;
  size_t WireSize() const override { return view_cert.WireSize(); }
};

}  // namespace achilles

#endif  // SRC_DAMYSUS_MESSAGES_H_
