// Wire messages of (chained) Damysus: two voting phases per view.
#ifndef SRC_DAMYSUS_MESSAGES_H_
#define SRC_DAMYSUS_MESSAGES_H_

#include "src/consensus/certificates.h"
#include "src/sim/process.h"

namespace achilles {

struct DamProposeMsg : SimMessage {
  BlockPtr block;
  SignedCert prep_cert;
  size_t WireSize() const override { return block->WireSize() + prep_cert.WireSize(); }
};

struct DamVote1Msg : SimMessage {
  SignedCert vote;
  size_t WireSize() const override { return vote.WireSize(); }
};

// Leader -> all: prepared QC (f+1 first-phase votes).
struct DamPreCommitMsg : SimMessage {
  QuorumCert prepared_qc;
  size_t WireSize() const override { return prepared_qc.WireSize(); }
};

struct DamVote2Msg : SimMessage {
  SignedCert vote;
  size_t WireSize() const override { return vote.WireSize(); }
};

// Leader -> all (and node -> next leader): commit QC (f+1 second-phase votes).
struct DamDecideMsg : SimMessage {
  QuorumCert commit_qc;
  size_t WireSize() const override { return commit_qc.WireSize(); }
};

struct DamNewViewMsg : SimMessage {
  SignedCert view_cert;
  size_t WireSize() const override { return view_cert.WireSize(); }
};

}  // namespace achilles

#endif  // SRC_DAMYSUS_MESSAGES_H_
