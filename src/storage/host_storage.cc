#include "src/storage/host_storage.h"

#include <algorithm>

#include "src/sim/host.h"

namespace achilles {
namespace storage {

const char* WalFateName(WalFate fate) {
  switch (fate) {
    case WalFate::kIntact:
      return "intact";
    case WalFate::kLostUnsynced:
      return "lost-unsynced";
    case WalFate::kTornTail:
      return "torn-tail";
  }
  return "?";
}

WriteAheadLog::WriteAheadLog(HostStableStorage* device, std::string name)
    : device_(device), name_(std::move(name)) {}

void WriteAheadLog::Append(ByteView record, SyncMode mode) {
  records_.emplace_back(record.begin(), record.end());
  bytes_ += record.size();
  ++appends_;
  device_->ever_written_ = true;
  device_->host_->JournalEvent(obs::JournalKind::kWalAppend, record.size(),
                               records_.size(), name_);
  if (mode == SyncMode::kSync) {
    device_->SyncAll();
  }
}

void WriteAheadLog::Sync() { device_->SyncAll(); }

void WriteAheadLog::TruncateFront(size_t count) {
  count = std::min(count, records_.size());
  if (count == 0) {
    return;
  }
  // Barrier 1: the drop must be computed against a durable image, so any unsynced tail
  // (here or anywhere else in the sync domain) is flushed first.
  device_->SyncAll();
  uint64_t dropped_bytes = 0;
  for (size_t i = 0; i < count; ++i) {
    dropped_bytes += records_[i].size();
  }
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(count));
  bytes_ -= dropped_bytes;
  durable_records_ = records_.size();
  durable_bytes_ = bytes_;
  // Barrier 2: the metadata write that commits the new log head is itself fsynced, so the
  // truncation is atomic — a crash fate applied after this point replays over the compacted
  // durable image and can never resurrect the dropped prefix.
  ++device_->fsyncs_;
  device_->host_->ChargeCpuAs(obs::Component::kFsync, device_->fsync_cost_);
  device_->host_->JournalEvent(obs::JournalKind::kLogTruncate, count, dropped_bytes, name_);
}

RecordStore::RecordStore(HostStableStorage* device) : device_(device) {}

void RecordStore::Put(const std::string& key, ByteView value, SyncMode mode) {
  Slot& slot = slots_[key];
  slot.value = Bytes(value.begin(), value.end());
  device_->ever_written_ = true;
  // Move-to-back in the dirty order: only the newest in-flight write can be torn.
  for (auto it = dirty_order_.begin(); it != dirty_order_.end(); ++it) {
    if (*it == key) {
      dirty_order_.erase(it);
      break;
    }
  }
  dirty_order_.push_back(key);
  device_->host_->JournalEvent(obs::JournalKind::kWalAppend, value.size(),
                               slots_.size(), "records/" + key);
  if (mode == SyncMode::kSync) {
    device_->SyncAll();
  }
}

std::optional<Bytes> RecordStore::Get(const std::string& key) const {
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    return std::nullopt;
  }
  return it->second.value;
}

void HostDurableStore::Put(const std::string& key, ByteView record) {
  device_->records().Put(key, record, SyncMode::kSync);
}

void HostDurableStore::PutAsync(const std::string& key, ByteView record) {
  device_->records().Put(key, record, SyncMode::kAsync);
}

std::optional<Bytes> HostDurableStore::Get(const std::string& key) {
  return device_->records().Get(key);
}

HostStableStorage::HostStableStorage(Host* host, SimDuration fsync_cost)
    : host_(host), fsync_cost_(fsync_cost), records_(this), record_store_(this) {}

WriteAheadLog& HostStableStorage::Wal(const std::string& name) {
  auto it = wals_.find(name);
  if (it == wals_.end()) {
    it = wals_.emplace(name, std::make_unique<WriteAheadLog>(this, name)).first;
  }
  return *it->second;
}

bool HostStableStorage::Dirty() const {
  if (!records_.dirty_order_.empty()) {
    return true;
  }
  for (const auto& [name, wal] : wals_) {
    if (wal->durable_records_ < wal->records_.size()) {
      return true;
    }
  }
  return false;
}

void HostStableStorage::SyncAll() {
  if (!Dirty()) {
    return;
  }
  uint64_t flushed_records = 0;
  uint64_t flushed_bytes = 0;
  for (const auto& [name, wal] : wals_) {
    flushed_records += wal->records_.size() - wal->durable_records_;
    flushed_bytes += wal->bytes_ - wal->durable_bytes_;
    wal->durable_records_ = wal->records_.size();
    wal->durable_bytes_ = wal->bytes_;
  }
  for (const std::string& key : records_.dirty_order_) {
    RecordStore::Slot& slot = records_.slots_[key];
    flushed_records += 1;
    flushed_bytes += slot.value ? slot.value->size() : 0;
    slot.durable_value = slot.value;
  }
  records_.dirty_order_.clear();
  ++fsyncs_;
  host_->ChargeCpuAs(obs::Component::kFsync, fsync_cost_);
  host_->JournalEvent(obs::JournalKind::kFsync, flushed_records, flushed_bytes);
}

uint64_t HostStableStorage::TotalWalRecords() const {
  uint64_t total = 0;
  for (const auto& [name, wal] : wals_) {
    total += wal->records_.size();
  }
  return total;
}

uint64_t HostStableStorage::TotalWalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, wal] : wals_) {
    total += wal->bytes_;
  }
  return total;
}

void HostStableStorage::ApplyCrashFate(WalFate fate) {
  for (const auto& [name, wal] : wals_) {
    size_t keep = wal->records_.size();
    switch (fate) {
      case WalFate::kIntact:
        break;
      case WalFate::kLostUnsynced:
        keep = wal->durable_records_;
        break;
      case WalFate::kTornTail:
        // The in-flight tail write tore; earlier unsynced records had already drained.
        if (keep > wal->durable_records_) {
          keep -= 1;
        }
        break;
    }
    if (keep < wal->records_.size()) {
      uint64_t dropped_bytes = 0;
      for (size_t i = keep; i < wal->records_.size(); ++i) {
        dropped_bytes += wal->records_[i].size();
      }
      host_->JournalEvent(obs::JournalKind::kWalTruncate, wal->records_.size() - keep,
                          dropped_bytes, name);
      wal->records_.resize(keep);
      wal->bytes_ -= dropped_bytes;
    }
    wal->durable_records_ = wal->records_.size();
    wal->durable_bytes_ = wal->bytes_;
  }
  if (!records_.dirty_order_.empty()) {
    size_t reverted = 0;
    switch (fate) {
      case WalFate::kIntact:
        for (const std::string& key : records_.dirty_order_) {
          RecordStore::Slot& slot = records_.slots_[key];
          slot.durable_value = slot.value;
        }
        break;
      case WalFate::kLostUnsynced:
        for (const std::string& key : records_.dirty_order_) {
          RecordStore::Slot& slot = records_.slots_[key];
          slot.value = slot.durable_value;
          ++reverted;
        }
        break;
      case WalFate::kTornTail: {
        // Only the newest in-flight put tore; older unsynced puts had drained.
        for (size_t i = 0; i + 1 < records_.dirty_order_.size(); ++i) {
          RecordStore::Slot& slot = records_.slots_[records_.dirty_order_[i]];
          slot.durable_value = slot.value;
        }
        RecordStore::Slot& torn = records_.slots_[records_.dirty_order_.back()];
        torn.value = torn.durable_value;
        reverted = 1;
        break;
      }
    }
    if (reverted > 0) {
      host_->JournalEvent(obs::JournalKind::kWalTruncate, reverted, 0, "records");
    }
    records_.dirty_order_.clear();
  }
}

}  // namespace storage
}  // namespace achilles
