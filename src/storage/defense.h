// Pluggable rollback-defense backends. The enum-dispatch persistence model (persist.h:
// pick a Durability class, get its fixed failure semantics) cannot express *competing
// rollback defenses*: designs that buy freshness for sealed state through different
// mechanisms at different costs. persist::Backend is that seam — a versioned-record
// persistence surface with explicit anti-rollback capabilities, so the Damysus/OneShot
// checkers and the checkpoint certificate floor can race Achilles' recovery against:
//
//   local        today's baseline: sealed blob + (when present) trusted monotonic counter.
//                Detection only, and only with a counter device; the -R variants crash-stop
//                on a version/counter mismatch.
//   rollbaccine  Rollbaccine-style replicated disk: every Persist is acked by peer "disk"
//                replicas over the (simulated) network, so recovery can take the freshest
//                surviving copy — rollback of any single host is *repaired*, not just
//                detected (herd immunity).
//   healer       "TEE is not a Healer"-style quorum freshness certificates: peers countersign
//                a version floor. Recovery below the floor is detected and refused, but the
//                record itself is not replicated — detection without repair.
//
// Backends charge their synchronous waits through CostModel (defense_* fields) as
// obs::Component::kCounter — the slot in the existing latency breakdowns where externalized
// anti-rollback I/O already lives (the Narrator counters set the precedent: a remote quorum
// write modeled as blocking device latency; see src/tee/narrator.h and DESIGN.md §2.23).
#ifndef SRC_STORAGE_DEFENSE_H_
#define SRC_STORAGE_DEFENSE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"
#include "src/storage/persist.h"

namespace achilles {
namespace persist {

// Which rollback-defense backend a cluster runs (--defense on every bench/chaos tool).
enum class DefenseKind : uint8_t {
  kLocal = 0,      // Sealed blob + local counter compare (the repo's historical behavior).
  kRollbaccine,    // Quorum-replicated sealed storage; rollback is repaired from peers.
  kHealer,         // Quorum freshness certificates; rollback is detected, not repaired.
};
inline constexpr int kNumDefenseKinds = 3;

const char* DefenseKindName(DefenseKind kind);
bool DefenseKindFromName(std::string_view name, DefenseKind* out);

// Strongest freshness statement a backend can make about what Open returns.
enum class FreshnessClass : uint8_t {
  kNone = 0,   // May silently serve stale state (plain sealed storage, no counter).
  kDetect,     // Stale state is detected and refused (counter compare, healer certs).
  kRecover,    // Stale local state is replaced by a fresh copy (rollbaccine replication).
};
const char* FreshnessClassName(FreshnessClass c);

// Capability matrix row (DESIGN.md §2.23); drives bench_defense's reporting and lets the
// chaos oracles know which invariants a backend is even claiming.
struct BackendCaps {
  DefenseKind kind = DefenseKind::kLocal;
  bool rollback_detection = false;   // Can Open ever report kRolledBack?
  bool rollback_prevention = false;  // Can Open repair stale local state?
  FreshnessClass freshness = FreshnessClass::kNone;
  bool quorum_dependent = false;     // Persist/Open block on peer acknowledgements.
};

// Per-incarnation open verdict.
enum class OpenStatus : uint8_t {
  kFresh = 0,   // Record is the freshest the backend can prove; safe to install.
  kEmpty,       // Nothing persisted under this key (first boot, or erased beyond repair).
  kRolledBack,  // Freshness check failed: local state is provably stale.
};
const char* OpenStatusName(OpenStatus s);

struct OpenResult {
  OpenStatus status = OpenStatus::kEmpty;
  // The surviving record. Present on kFresh; on kRolledBack it still carries the stale
  // local record when one exists (a caller choosing to network-recover, like Achilles,
  // wants the version numbers but must not install the bytes).
  std::optional<Bytes> record;
  uint64_t version = 0;           // Version of `record` (0 when absent).
  uint64_t expected_version = 0;  // Freshness floor the backend proved (0 = no claim).
  bool repaired = false;          // kFresh via a peer copy newer than the local blob.
};

// One rollback-defense persistence surface, owned by an EnclaveRuntime incarnation (the
// peer-visible state it manages lives in the crash-surviving DefenseService below).
// Persist atomically replaces the record under `key`, assigns the next version, and blocks
// until the backend's durability+freshness guarantee holds (quorum backends charge the
// round trip). Open is the per-incarnation recover entry point: it returns the surviving
// record with the backend's freshness verdict; `verify` = false skips the freshness check
// (the deliberately-broken chaos variants; see BrokenVariant in src/chaos/runner.h).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendCaps caps() const = 0;
  virtual uint64_t Persist(const std::string& key, ByteView record) = 0;
  virtual OpenResult Open(const std::string& key, bool verify) = 0;

  // Plain persist::Store facet over this backend, for call sites that speak the record
  // interface (the checkpoint certificate floor): Put routes through Persist, Get refuses
  // anything Open would not certify fresh.
  virtual Store& store() = 0;
};

// Per-reboot fate of a victim's defense-backend peer state, carried in chaos-script v4
// reboot events (bits 24-31 of FaultEvent::arg; see src/harness/fault_script.h). Lives
// here rather than fault_script.h so DefenseService can apply it without a harness dep.
enum class DefenseFate : uint8_t {
  kIntact = 0,      // Peer copies/certificates survive untouched.
  kPeerStale = 1,   // One peer holder is rolled back to its oldest copy/cert of the victim.
  kPeerErased = 2,  // One peer holder loses every copy/cert of the victim.
};
const char* DefenseFateName(DefenseFate fate);

// Synchronous-wait costs a quorum backend charges per operation (CostModel carries the
// defaults; the network one-way delay comes from the cluster's NetworkConfig).
struct DefenseCosts {
  SimDuration one_way = 0;        // One network traversal to the peer quorum.
  SimDuration replica_write = 0;  // Peer-side durable write of a replicated copy.
  SimDuration replica_read = 0;   // Peer-side read when recovering a copy.
  SimDuration cert_op = 0;        // Peer-side freshness-certificate issue/lookup.
};

// Cluster-level, crash-surviving peer state for the quorum backends: which versions of
// each node's sealed records the *other* hosts hold (rollbaccine copies) or have
// countersigned (healer certificates). Owned by the Cluster like the per-node platforms,
// so it survives any single node's crash — exactly the property both designs buy their
// freshness from. The quorum is modeled as always reachable within the charged latency
// (like the Narrator counter service); partitions delay but never fail these operations,
// which is the favorable-to-the-competition assumption bench_defense documents.
class DefenseService {
 public:
  DefenseService(uint32_t n, const DefenseCosts& costs);

  const DefenseCosts& costs() const { return costs_; }
  uint32_t n() const { return n_; }

  // Rollbaccine path: append version `version` of `owner`'s record under `key` at every
  // peer holder (owner excluded — its local sealed blob is its own copy).
  void Replicate(uint32_t owner, const std::string& key, uint64_t version, ByteView record);
  // Freshest surviving peer copy, or nullopt when every holder lost the key.
  struct Copy {
    uint64_t version = 0;
    Bytes record;
  };
  std::optional<Copy> FreshestPeerCopy(uint32_t owner, const std::string& key) const;

  // Healer path: countersign version `version` of `owner`'s record at every peer holder.
  void Certify(uint32_t owner, const std::string& key, uint64_t version);
  // Highest version any surviving holder has certified (0 = none).
  uint64_t CertifiedFloor(uint32_t owner, const std::string& key) const;

  // Chaos hook (reboot events, applied while the victim is down): attacks ONE peer
  // holder's view of `owner` — the deterministic holder (owner + 1) % n — per the fate.
  // With n >= 3 at least one untouched holder remains, which is both designs' assumption
  // (they tolerate rollback of any single host, not of the whole herd).
  void ApplyPeerFate(uint32_t owner, DefenseFate fate);

  // Stats (bench_defense's defense-write columns).
  uint64_t replications() const { return replications_; }
  uint64_t certifications() const { return certifications_; }

 private:
  struct Holder {
    // Per (owner, key): every surviving replicated copy, append order.
    std::map<std::pair<uint32_t, std::string>, std::vector<Copy>> copies;
    // Per (owner, key): every surviving certified version, append order.
    std::map<std::pair<uint32_t, std::string>, std::vector<uint64_t>> certs;
  };

  uint32_t n_;
  DefenseCosts costs_;
  std::vector<Holder> holders_;
  uint64_t replications_ = 0;
  uint64_t certifications_ = 0;
};

// Process-global default defense kind, set by the shared CLI layer (harness::FlagSet) so
// every bench's ClusterConfig picks up --defense without per-bench plumbing. Defaults to
// kLocal — the historical behavior — when no flag is given.
DefenseKind DefaultDefense();
void SetDefaultDefense(DefenseKind kind);

}  // namespace persist
}  // namespace achilles

#endif  // SRC_STORAGE_DEFENSE_H_
