#include "src/storage/defense.h"

#include <algorithm>

#include "src/common/check.h"

namespace achilles {
namespace persist {

const char* DefenseKindName(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kLocal:
      return "local";
    case DefenseKind::kRollbaccine:
      return "rollbaccine";
    case DefenseKind::kHealer:
      return "healer";
  }
  return "?";
}

bool DefenseKindFromName(std::string_view name, DefenseKind* out) {
  for (int i = 0; i < kNumDefenseKinds; ++i) {
    const DefenseKind kind = static_cast<DefenseKind>(i);
    if (name == DefenseKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const char* FreshnessClassName(FreshnessClass c) {
  switch (c) {
    case FreshnessClass::kNone:
      return "none";
    case FreshnessClass::kDetect:
      return "detect";
    case FreshnessClass::kRecover:
      return "recover";
  }
  return "?";
}

const char* OpenStatusName(OpenStatus s) {
  switch (s) {
    case OpenStatus::kFresh:
      return "fresh";
    case OpenStatus::kEmpty:
      return "empty";
    case OpenStatus::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

const char* DefenseFateName(DefenseFate fate) {
  switch (fate) {
    case DefenseFate::kIntact:
      return "intact";
    case DefenseFate::kPeerStale:
      return "peer-stale";
    case DefenseFate::kPeerErased:
      return "peer-erased";
  }
  return "?";
}

DefenseService::DefenseService(uint32_t n, const DefenseCosts& costs)
    : n_(n), costs_(costs), holders_(n) {
  ACHILLES_CHECK(n >= 2);
}

void DefenseService::Replicate(uint32_t owner, const std::string& key, uint64_t version,
                               ByteView record) {
  ACHILLES_CHECK(owner < n_);
  ++replications_;
  for (uint32_t h = 0; h < n_; ++h) {
    if (h == owner) {
      continue;
    }
    holders_[h].copies[{owner, key}].push_back(
        Copy{version, Bytes(record.begin(), record.end())});
  }
}

std::optional<DefenseService::Copy> DefenseService::FreshestPeerCopy(
    uint32_t owner, const std::string& key) const {
  ACHILLES_CHECK(owner < n_);
  const Copy* best = nullptr;
  for (uint32_t h = 0; h < n_; ++h) {
    if (h == owner) {
      continue;
    }
    const auto it = holders_[h].copies.find({owner, key});
    if (it == holders_[h].copies.end() || it->second.empty()) {
      continue;
    }
    const Copy& latest = it->second.back();
    if (best == nullptr || latest.version > best->version) {
      best = &latest;
    }
  }
  return best != nullptr ? std::optional<Copy>(*best) : std::nullopt;
}

void DefenseService::Certify(uint32_t owner, const std::string& key, uint64_t version) {
  ACHILLES_CHECK(owner < n_);
  ++certifications_;
  for (uint32_t h = 0; h < n_; ++h) {
    if (h == owner) {
      continue;
    }
    holders_[h].certs[{owner, key}].push_back(version);
  }
}

uint64_t DefenseService::CertifiedFloor(uint32_t owner, const std::string& key) const {
  ACHILLES_CHECK(owner < n_);
  uint64_t floor = 0;
  for (uint32_t h = 0; h < n_; ++h) {
    if (h == owner) {
      continue;
    }
    const auto it = holders_[h].certs.find({owner, key});
    if (it == holders_[h].certs.end() || it->second.empty()) {
      continue;
    }
    floor = std::max(floor, *std::max_element(it->second.begin(), it->second.end()));
  }
  return floor;
}

void DefenseService::ApplyPeerFate(uint32_t owner, DefenseFate fate) {
  ACHILLES_CHECK(owner < n_);
  if (fate == DefenseFate::kIntact) {
    return;
  }
  Holder& holder = holders_[(owner + 1) % n_];
  for (auto& [key, copies] : holder.copies) {
    if (key.first != owner || copies.empty()) {
      continue;
    }
    if (fate == DefenseFate::kPeerErased) {
      copies.clear();
    } else {
      copies.erase(copies.begin() + 1, copies.end());  // Roll back to the oldest copy.
    }
  }
  for (auto& [key, certs] : holder.certs) {
    if (key.first != owner || certs.empty()) {
      continue;
    }
    if (fate == DefenseFate::kPeerErased) {
      certs.clear();
    } else {
      certs.erase(certs.begin() + 1, certs.end());
    }
  }
}

namespace {
DefenseKind g_default_defense = DefenseKind::kLocal;
}  // namespace

DefenseKind DefaultDefense() { return g_default_defense; }
void SetDefaultDefense(DefenseKind kind) { g_default_defense = kind; }

}  // namespace persist
}  // namespace achilles
