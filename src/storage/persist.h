// Unified persistence API. The system has four places a replica can park state that must
// outlive something: plain memory (outlives nothing), host stable storage (outlives
// crashes, but suffers crash-consistency faults), TEE sealed storage (outlives crashes,
// confidential+authenticated, but the paper's adversary may roll it back or erase it), and
// the trusted monotonic counter (outlives crashes and cannot be rolled back, but holds only
// a number). Historically each surface grew its own ad-hoc API; persist::Store gives them
// one record-oriented interface with an explicit durability class, so protocol code states
// *what guarantee it is buying* at every persistence point.
//
// The durability class is a property of the store handle, not of the call: code that needs
// rollback resistance must hold a kTeeCounter (or kTeeSealed + counter-compare) store, and
// code handed a kHostDurable store knows a reboot may surface torn/lost unsynced suffixes
// but never an old value resurrected (no rollback adversary on the host disk — see
// DESIGN.md "storage subsystem").
#ifndef SRC_STORAGE_PERSIST_H_
#define SRC_STORAGE_PERSIST_H_

#include <map>
#include <optional>
#include <string>

#include "src/common/bytes.h"

namespace achilles {
namespace persist {

enum class Durability : uint8_t {
  kVolatile = 0,  // Plain memory; lost on crash. (Achilles' checker: recovery, not disk.)
  kHostDurable,   // Host WAL/record store; survives crashes minus unsynced suffixes.
  kTeeSealed,     // Sealed blobs; survives crashes, rollback adversary applies.
  kTeeCounter,    // Trusted monotonic counter; survives crashes, rollback-free.
};

const char* DurabilityName(Durability d);

// One keyed-record persistence surface. Put atomically replaces the record under `key`
// and is durable per durability() when it returns (stores with async internals must sync
// before returning). Get returns the surviving record, which after a crash reflects the
// surface's failure semantics, not necessarily the last Put.
class Store {
 public:
  virtual ~Store() = default;

  virtual Durability durability() const = 0;

  // False when the surface is absent on this platform (e.g. a counter-less TEE). Writes to
  // an unavailable store are dropped; reads return nullopt / 0.
  virtual bool available() const { return true; }

  virtual void Put(const std::string& key, ByteView record) = 0;
  virtual std::optional<Bytes> Get(const std::string& key) = 0;

  // Deliberately-async put: the record is visible immediately but rides to durability on
  // the surface's next sync barrier (host-durable stores override; everywhere else the
  // distinction is meaningless and this is a plain Put). Protocol code uses it to state
  // "losing the unsynced suffix of this is acceptable" without reaching below the
  // persist::Store seam.
  virtual void PutAsync(const std::string& key, ByteView record) { Put(key, record); }

  // Monotonic-counter facet, meaningful only for kTeeCounter stores: Increment bumps and
  // returns the new value, Read returns the current one. Record-only stores return 0.
  virtual uint64_t Increment() { return 0; }
  virtual uint64_t Read() { return 0; }
};

// In-memory store: explicit spelling of "this state is deliberately not persisted".
class VolatileStore final : public Store {
 public:
  Durability durability() const override { return Durability::kVolatile; }
  void Put(const std::string& key, ByteView record) override;
  std::optional<Bytes> Get(const std::string& key) override;

 private:
  std::map<std::string, Bytes> records_;
};

}  // namespace persist
}  // namespace achilles

#endif  // SRC_STORAGE_PERSIST_H_
