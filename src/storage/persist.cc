#include "src/storage/persist.h"

namespace achilles {
namespace persist {

const char* DurabilityName(Durability d) {
  switch (d) {
    case Durability::kVolatile:
      return "volatile";
    case Durability::kHostDurable:
      return "host-durable";
    case Durability::kTeeSealed:
      return "tee-sealed";
    case Durability::kTeeCounter:
      return "tee-counter";
  }
  return "?";
}

void VolatileStore::Put(const std::string& key, ByteView record) {
  records_[key] = Bytes(record.begin(), record.end());
}

std::optional<Bytes> VolatileStore::Get(const std::string& key) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace persist
}  // namespace achilles
