// Simulated crash-consistent host stable storage: the disk under a replica process.
//
// One HostStableStorage per node, owned by the NodePlatform so it survives process crashes
// (like the sealed-storage device). It exposes two surfaces — named append-only write-ahead
// logs and a small atomic key-value record store — sharing one sync domain: a sync on any
// surface is an fsync barrier that makes *everything* pending durable (one disk, one
// flush), charged to the calling host as obs::Component::kFsync the same way ECALLs are
// charged today. Because handlers run to completion and crashes only land between handlers,
// an append+sync inside one handler is crash-atomic; the interesting failure window is
// deliberately-async writes.
//
// Crash semantics (applied by the harness between incarnations via ApplyCrashFate):
//   kIntact        everything written survives, synced or not (the cache happened to flush).
//   kLostUnsynced  data past the durable frontier is gone (the cache never flushed).
//   kTornTail      the cache mostly flushed, but the crash tore the in-flight tail write:
//                  each log loses its last unsynced record, the record store its last
//                  unsynced put; earlier unsynced data survives.
// In every case the synced prefix survives exactly — host storage has crash-consistency
// faults but NO rollback adversary. Rollback (resurrecting an old, valid state) stays
// exclusive to the TEE sealed-storage surface (src/tee/sealed_storage.h), preserving the
// paper's threat-model split: Achilles' contribution is measured against baselines whose
// disks behave like disks, not like the sealed-blob adversary.
#ifndef SRC_STORAGE_HOST_STORAGE_H_
#define SRC_STORAGE_HOST_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"
#include "src/storage/persist.h"

namespace achilles {

class Host;

namespace storage {

enum class SyncMode : uint8_t {
  kAsync = 0,  // Buffered; durable only after a later sync barrier (or a lucky crash).
  kSync = 1,   // Fsync barrier before returning: one kFsync charge, everything durable.
};

// What the host disk looks like when the node comes back up; carried per reboot event by
// the chaos fault scripts (src/harness/fault_script.h).
enum class WalFate : uint8_t {
  kIntact = 0,
  kLostUnsynced = 1,
  kTornTail = 2,
};

const char* WalFateName(WalFate fate);

class HostStableStorage;

// One append-only log of opaque records. Appends are buffered; Sync() (or SyncMode::kSync)
// raises the durable frontier to the current tail.
class WriteAheadLog {
 public:
  WriteAheadLog(HostStableStorage* device, std::string name);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  void Append(ByteView record, SyncMode mode);
  // Device-wide fsync barrier (see HostStableStorage::SyncAll).
  void Sync();
  // Compaction barrier: atomically drops the oldest `count` records (clamped to the log
  // size). Runs a device-wide fsync first so the drop applies to a fully durable image,
  // then charges one more kFsync for the metadata write that commits the new log head —
  // a crash therefore sees either the old durable log or the truncated one, never a
  // partial drop. Journals kLogTruncate with what was dropped. No-op for count == 0.
  void TruncateFront(size_t count);

  const std::string& name() const { return name_; }
  // All records currently visible to the running process, durable or not, append order.
  const std::vector<Bytes>& records() const { return records_; }
  size_t NumRecords() const { return records_.size(); }
  size_t DurableRecords() const { return durable_records_; }
  uint64_t TotalBytes() const { return bytes_; }
  uint64_t appends() const { return appends_; }

 private:
  friend class HostStableStorage;

  HostStableStorage* device_;
  std::string name_;
  std::vector<Bytes> records_;
  size_t durable_records_ = 0;
  uint64_t bytes_ = 0;          // Sum of record sizes currently in the log.
  uint64_t durable_bytes_ = 0;  // Bytes at or below the durable frontier.
  uint64_t appends_ = 0;
};

// Small atomic key-value store (metadata records: terms, votes, locks). A put atomically
// replaces the whole record — a crash never surfaces a torn value, only the previous one.
class RecordStore {
 public:
  explicit RecordStore(HostStableStorage* device);

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  void Put(const std::string& key, ByteView value, SyncMode mode);
  std::optional<Bytes> Get(const std::string& key) const;

 private:
  friend class HostStableStorage;

  struct Slot {
    std::optional<Bytes> value;          // Visible to the running process.
    std::optional<Bytes> durable_value;  // What a crash falls back to.
  };

  HostStableStorage* device_;
  std::map<std::string, Slot> slots_;
  std::vector<std::string> dirty_order_;  // Unsynced puts, oldest first (for torn-tail).
};

// persist::Store view over a HostStableStorage's record store: every Put is a sync put, so
// the interface contract ("durable on return") holds for the host-durable class.
class HostDurableStore final : public persist::Store {
 public:
  explicit HostDurableStore(HostStableStorage* device) : device_(device) {}

  persist::Durability durability() const override {
    return persist::Durability::kHostDurable;
  }
  void Put(const std::string& key, ByteView record) override;
  // Buffered put: durable only after the device's next sync barrier (torn-tail window).
  void PutAsync(const std::string& key, ByteView record) override;
  std::optional<Bytes> Get(const std::string& key) override;

 private:
  HostStableStorage* device_;
};

// The per-node disk. Survives crashes; the harness applies a WalFate between incarnations.
class HostStableStorage {
 public:
  // `fsync_cost` is charged to `host` as obs::Component::kFsync per dirty sync barrier.
  HostStableStorage(Host* host, SimDuration fsync_cost);

  HostStableStorage(const HostStableStorage&) = delete;
  HostStableStorage& operator=(const HostStableStorage&) = delete;

  // Named log, created empty on first use. References stay valid for the device's life.
  WriteAheadLog& Wal(const std::string& name);
  RecordStore& records() { return records_; }
  // Unified-API handle for metadata records (persist::Durability::kHostDurable).
  persist::Store& record_store() { return record_store_; }

  // Fsync barrier: makes every pending write (all logs + the record store) durable with a
  // single kFsync charge. Clean barriers are free (nothing to flush).
  void SyncAll();

  // Crash hook for the harness: reshapes unsynced state per `fate`, journals what was
  // dropped (kWalTruncate), and leaves everything surviving durable. Called while the
  // node's process is down; charges no CPU (the crash already happened).
  void ApplyCrashFate(WalFate fate);

  uint64_t fsyncs() const { return fsyncs_; }
  // True once any append/put happened this boot-to-date (benches use this to tell
  // stable-storage protocols from storage-free ones).
  bool ever_written() const { return ever_written_; }

  // Footprint accessors (log-compaction gauges): records/bytes currently held across all
  // WALs on this disk.
  uint64_t TotalWalRecords() const;
  uint64_t TotalWalBytes() const;

 private:
  friend class WriteAheadLog;
  friend class RecordStore;

  bool Dirty() const;

  Host* host_;
  SimDuration fsync_cost_;
  // std::map keeps Wal() iteration deterministic; unique_ptr keeps references stable.
  std::map<std::string, std::unique_ptr<WriteAheadLog>> wals_;
  RecordStore records_;
  HostDurableStore record_store_;
  uint64_t fsyncs_ = 0;
  bool ever_written_ = false;
};

}  // namespace storage
}  // namespace achilles

#endif  // SRC_STORAGE_HOST_STORAGE_H_
