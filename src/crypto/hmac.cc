#include "src/crypto/hmac.h"

#include <cstring>

namespace achilles {

Hash256 HmacSha256(ByteView key, ByteView message) {
  uint8_t key_block[64];
  std::memset(key_block, 0, sizeof(key_block));
  if (key.size() > 64) {
    const Hash256 kh = Sha256Digest(key);
    std::memcpy(key_block, kh.data(), kh.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64];
  uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteView(ipad, 64));
  inner.Update(message);
  const Hash256 inner_hash = inner.Finish();

  Sha256 outer;
  outer.Update(ByteView(opad, 64));
  outer.Update(ByteView(inner_hash.data(), inner_hash.size()));
  return outer.Finish();
}

Hash256 DeriveKey(ByteView key, const std::string& label, ByteView context) {
  Bytes msg;
  Append(msg, AsBytes(label));
  msg.push_back(0);
  Append(msg, context);
  return HmacSha256(key, ByteView(msg.data(), msg.size()));
}

}  // namespace achilles
