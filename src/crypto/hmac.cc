#include "src/crypto/hmac.h"

#include <cstring>

namespace achilles {

HmacKey::HmacKey(ByteView key) {
  uint8_t key_block[64];
  std::memset(key_block, 0, sizeof(key_block));
  if (key.size() > 64) {
    const Hash256 kh = Sha256Digest(key);
    std::memcpy(key_block, kh.data(), kh.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t pad[64];
  Sha256 h;
  for (int i = 0; i < 64; ++i) {
    pad[i] = key_block[i] ^ 0x36;
  }
  h.Update(ByteView(pad, 64));
  inner_ = h.SaveMidstate();

  h.Reset();
  for (int i = 0; i < 64; ++i) {
    pad[i] = key_block[i] ^ 0x5c;
  }
  h.Update(ByteView(pad, 64));
  outer_ = h.SaveMidstate();
}

Hash256 HmacKey::Mac(ByteView message) const {
  Sha256 h;
  h.RestoreMidstate(inner_, 64);
  h.Update(message);
  const Hash256 inner_hash = h.Finish();

  h.RestoreMidstate(outer_, 64);
  h.Update(ByteView(inner_hash.data(), inner_hash.size()));
  return h.Finish();
}

Hash256 HmacSha256(ByteView key, ByteView message) {
  return HmacKey(key).Mac(message);
}

Hash256 DeriveKey(ByteView key, const std::string& label, ByteView context) {
  Bytes msg;
  Append(msg, AsBytes(label));
  msg.push_back(0);
  Append(msg, context);
  return HmacSha256(key, ByteView(msg.data(), msg.size()));
}

}  // namespace achilles
