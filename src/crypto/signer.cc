#include "src/crypto/signer.h"

#include "src/common/check.h"
#include "src/crypto/hmac.h"

namespace achilles {

namespace {
constexpr size_t kHmacTagSize = 32;
// The fast mode models a 64-byte ECDSA signature on the wire; the tag itself is 32 bytes, so
// we pad with the signer-bound derivation to keep encoded size honest.
constexpr size_t kModeledSigSize = 64;
}  // namespace

CryptoSuite::CryptoSuite(SignatureScheme scheme, uint32_t num_parties, uint64_t seed)
    : scheme_(scheme), num_parties_(num_parties) {
  Bytes seed_bytes(32, 0);
  for (int i = 0; i < 8; ++i) {
    seed_bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(seed >> (8 * i));
  }
  if (scheme_ == SignatureScheme::kSchnorr) {
    schnorr_keys_.reserve(num_parties_);
    for (uint32_t i = 0; i < num_parties_; ++i) {
      Bytes party_seed = seed_bytes;
      party_seed.push_back(static_cast<uint8_t>(i));
      party_seed.push_back(static_cast<uint8_t>(i >> 8));
      party_seed.push_back(static_cast<uint8_t>(i >> 16));
      party_seed.push_back(static_cast<uint8_t>(i >> 24));
      schnorr_keys_.push_back(
          SchnorrKeyFromSeed(ByteView(party_seed.data(), party_seed.size())));
    }
  } else {
    hmac_keys_.reserve(num_parties_);
    const Hash256 master =
        DeriveKey(ByteView(seed_bytes.data(), seed_bytes.size()), "suite-master", ByteView());
    for (uint32_t i = 0; i < num_parties_; ++i) {
      Bytes ctx(4);
      for (int b = 0; b < 4; ++b) {
        ctx[static_cast<size_t>(b)] = static_cast<uint8_t>(i >> (8 * b));
      }
      hmac_keys_.push_back(DeriveKey(ByteView(master.data(), master.size()), "party-key",
                                     ByteView(ctx.data(), ctx.size())));
      hmac_scheds_.emplace_back(ByteView(hmac_keys_.back().data(), kHmacTagSize));
    }
  }
}

Signature CryptoSuite::Sign(uint32_t signer, ByteView msg) const {
  ACHILLES_CHECK(signer < num_parties_);
  Signature sig;
  sig.signer = signer;
  if (scheme_ == SignatureScheme::kSchnorr) {
    sig.blob = SchnorrSign(schnorr_keys_[signer], msg);
  } else {
    const Hash256 tag = hmac_scheds_[signer].Mac(msg);
    sig.blob.assign(tag.begin(), tag.end());
    sig.blob.resize(kModeledSigSize, 0);  // Pad to the modeled ECDSA wire size.
  }
  return sig;
}

bool CryptoSuite::Verify(const Signature& sig, ByteView msg) const {
  if (sig.signer >= num_parties_) {
    return false;
  }
  if (scheme_ == SignatureScheme::kSchnorr) {
    return SchnorrVerify(schnorr_keys_[sig.signer].pub, msg,
                         ByteView(sig.blob.data(), sig.blob.size()));
  }
  if (sig.blob.size() != kModeledSigSize) {
    return false;
  }
  const Hash256 tag = hmac_scheds_[sig.signer].Mac(msg);
  return ConstantTimeEqual(ByteView(sig.blob.data(), kHmacTagSize),
                           ByteView(tag.data(), tag.size()));
}

bool CryptoSuite::VerifyQuorum(const std::vector<Signature>& sigs, ByteView msg,
                               size_t quorum) const {
  if (sigs.size() < quorum) {
    return false;
  }
  std::vector<bool> seen(num_parties_, false);
  for (const Signature& sig : sigs) {
    if (sig.signer >= num_parties_ || seen[sig.signer]) {
      return false;
    }
    seen[sig.signer] = true;
  }
  if (scheme_ == SignatureScheme::kSchnorr && sigs.size() > 1) {
    // Quorum certificates are all-or-nothing: one batched check over the whole set
    // replaces per-signature verification (same accept/reject decision).
    std::vector<SchnorrBatchInput> batch;
    batch.reserve(sigs.size());
    for (const Signature& sig : sigs) {
      batch.push_back(SchnorrBatchInput{&schnorr_keys_[sig.signer].pub, msg,
                                        ByteView(sig.blob.data(), sig.blob.size())});
    }
    return SchnorrBatchVerify(batch).all_valid;
  }
  for (const Signature& sig : sigs) {
    if (!Verify(sig, msg)) {
      return false;
    }
  }
  return sigs.size() >= quorum;
}

const AffinePoint& CryptoSuite::PublicKey(uint32_t party) const {
  ACHILLES_CHECK(scheme_ == SignatureScheme::kSchnorr && party < num_parties_);
  return schnorr_keys_[party].pub;
}

}  // namespace achilles
