// Schnorr signatures over secp256k1 (BIP340-flavoured challenge, full-point encoding).
// Deterministic nonces: k = H(d || m || counter) reduced mod n.
#ifndef SRC_CRYPTO_SCHNORR_H_
#define SRC_CRYPTO_SCHNORR_H_

#include "src/crypto/secp256k1.h"

namespace achilles {

struct SchnorrKeyPair {
  UInt256 d;        // Secret scalar in [1, n-1].
  AffinePoint pub;  // d * G.
};

// Derives a key pair from 32 bytes of seed material (hashed and reduced into range).
SchnorrKeyPair SchnorrKeyFromSeed(ByteView seed);

// Signature is 96 bytes: R.x || R.y || s, all big-endian.
constexpr size_t kSchnorrSignatureSize = 96;

Bytes SchnorrSign(const SchnorrKeyPair& key, ByteView msg);
bool SchnorrVerify(const AffinePoint& pub, ByteView msg, ByteView sig);

}  // namespace achilles

#endif  // SRC_CRYPTO_SCHNORR_H_
