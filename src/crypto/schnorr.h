// Schnorr signatures over secp256k1 (BIP340-flavoured challenge, full-point encoding).
// Deterministic nonces: k = H(d || m || counter) reduced mod n.
#ifndef SRC_CRYPTO_SCHNORR_H_
#define SRC_CRYPTO_SCHNORR_H_

#include "src/crypto/secp256k1.h"

namespace achilles {

struct SchnorrKeyPair {
  UInt256 d;        // Secret scalar in [1, n-1].
  AffinePoint pub;  // d * G.
};

// Derives a key pair from 32 bytes of seed material (hashed and reduced into range).
SchnorrKeyPair SchnorrKeyFromSeed(ByteView seed);

// Signature is 96 bytes: R.x || R.y || s, all big-endian.
constexpr size_t kSchnorrSignatureSize = 96;

Bytes SchnorrSign(const SchnorrKeyPair& key, ByteView msg);
bool SchnorrVerify(const AffinePoint& pub, ByteView msg, ByteView sig);

// --- Batch verification ---
// Checks the random linear combination (Σ aᵢ·sᵢ)·G == Σ aᵢ·Rᵢ + Σ (aᵢ·eᵢ)·Pᵢ with one
// MultiScalarMul over 2m points instead of m independent verifications. The weights aᵢ
// are derived deterministically from a transcript hash over every (pub, msg, sig) in the
// batch (a₀ = 1), so a forger cannot choose signatures that cancel; the combined check
// accepts iff all signatures verify, except with negligible probability. When the batch
// check fails, the verifier falls back to scalar SchnorrVerify to identify the first
// invalid signature.

struct SchnorrBatchInput {
  const AffinePoint* pub = nullptr;
  ByteView msg;
  ByteView sig;
};

struct SchnorrBatchResult {
  bool all_valid = false;
  // Index of the first invalid signature found by the scalar fallback; -1 when all valid.
  int first_bad = -1;
};

SchnorrBatchResult SchnorrBatchVerify(const std::vector<SchnorrBatchInput>& batch);

}  // namespace achilles

#endif  // SRC_CRYPTO_SCHNORR_H_
