// secp256k1 group arithmetic: fast reduction modulo the field prime, Jacobian point
// operations, and scalar multiplication. The paper's prototype uses OpenSSL ECDSA over
// prime256v1; this from-scratch secp256k1 layer plays the same role (see DESIGN.md §1).
#ifndef SRC_CRYPTO_SECP256K1_H_
#define SRC_CRYPTO_SECP256K1_H_

#include "src/crypto/uint256.h"

namespace achilles {

// Field prime p = 2^256 - 2^32 - 977 and group order n.
const UInt256& Secp256k1P();
const UInt256& Secp256k1N();

// Field element operations (values are canonical, i.e. < p).
UInt256 FieldAdd(const UInt256& a, const UInt256& b);
UInt256 FieldSub(const UInt256& a, const UInt256& b);
UInt256 FieldMul(const UInt256& a, const UInt256& b);
UInt256 FieldSqr(const UInt256& a);
UInt256 FieldInv(const UInt256& a);  // a != 0, via Fermat's little theorem.
UInt256 FieldNeg(const UInt256& a);

struct AffinePoint {
  UInt256 x;
  UInt256 y;
  bool infinity = true;

  bool operator==(const AffinePoint& o) const;
};

struct JacobianPoint {
  UInt256 x;
  UInt256 y;
  UInt256 z;  // z == 0 encodes the point at infinity.

  static JacobianPoint Infinity();
  static JacobianPoint FromAffine(const AffinePoint& p);
  bool IsInfinity() const { return z.IsZero(); }
};

const AffinePoint& Secp256k1G();

JacobianPoint PointDouble(const JacobianPoint& p);
JacobianPoint PointAddMixed(const JacobianPoint& p, const AffinePoint& q);
JacobianPoint PointAdd(const JacobianPoint& p, const JacobianPoint& q);
AffinePoint ToAffine(const JacobianPoint& p);

// k * P via left-to-right double-and-add.
AffinePoint ScalarMul(const UInt256& k, const AffinePoint& p);
// k * G.
AffinePoint ScalarMulBase(const UInt256& k);

// Σ scalars[i] * points[i] via Pippenger's bucket method (4-bit windows). One shared
// double-chain across all terms makes this ~w× cheaper than summing individual
// ScalarMul results; it is what makes batch signature verification pay off
// (src/crypto/schnorr.h). Infinity points and zero scalars contribute nothing.
JacobianPoint MultiScalarMul(const std::vector<UInt256>& scalars,
                             const std::vector<AffinePoint>& points);

// True iff (x, y) satisfies y^2 = x^3 + 7 with x, y canonical field elements.
bool IsOnCurve(const AffinePoint& p);

// Serialization: 64 bytes x||y big-endian (uncompressed, no prefix byte). Infinity is all
// zeros. Decode validates curve membership.
Bytes EncodePoint(const AffinePoint& p);
bool DecodePoint(ByteView data, AffinePoint& out);

}  // namespace achilles

#endif  // SRC_CRYPTO_SECP256K1_H_
