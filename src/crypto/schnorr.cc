#include "src/crypto/schnorr.h"

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace achilles {

namespace {

UInt256 HashToScalar(ByteView a, ByteView b, ByteView c) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  h.Update(c);
  const Hash256 digest = h.Finish();
  const UInt256 raw = UInt256::FromBytesBE(ByteView(digest.data(), digest.size()));
  // Reduce into [0, n). A single conditional subtraction is statistically sufficient but we
  // use the generic reduction for correctness on all inputs.
  UInt512 wide{};
  for (int i = 0; i < 4; ++i) {
    wide[i] = raw.limbs[i];
  }
  return Mod512(wide, Secp256k1N());
}

UInt256 Challenge(const AffinePoint& r, const AffinePoint& pub, ByteView msg) {
  Bytes ctx = EncodePoint(r);
  Append(ctx, ByteView(EncodePoint(pub)));
  return HashToScalar(ByteView(ctx.data(), ctx.size()), msg, ByteView());
}

}  // namespace

SchnorrKeyPair SchnorrKeyFromSeed(ByteView seed) {
  uint8_t counter = 0;
  while (true) {
    Bytes material(seed.begin(), seed.end());
    material.push_back(counter++);
    const UInt256 d = HashToScalar(ByteView(material.data(), material.size()),
                                   AsBytes("schnorr-key"), ByteView());
    if (!d.IsZero()) {
      return SchnorrKeyPair{d, ScalarMulBase(d)};
    }
  }
}

Bytes SchnorrSign(const SchnorrKeyPair& key, ByteView msg) {
  const Bytes d_bytes = key.d.ToBytesBE();
  uint8_t counter = 0;
  while (true) {
    Bytes nonce_ctx = d_bytes;
    nonce_ctx.push_back(counter++);
    const UInt256 k =
        HashToScalar(ByteView(nonce_ctx.data(), nonce_ctx.size()), msg, AsBytes("nonce"));
    if (k.IsZero()) {
      continue;
    }
    const AffinePoint r = ScalarMulBase(k);
    const UInt256 e = Challenge(r, key.pub, msg);
    const UInt256 s = AddMod(k, MulMod(e, key.d, Secp256k1N()), Secp256k1N());
    Bytes sig = EncodePoint(r);
    Append(sig, ByteView(s.ToBytesBE()));
    ACHILLES_CHECK(sig.size() == kSchnorrSignatureSize);
    return sig;
  }
}

bool SchnorrVerify(const AffinePoint& pub, ByteView msg, ByteView sig) {
  if (sig.size() != kSchnorrSignatureSize || pub.infinity) {
    return false;
  }
  AffinePoint r;
  if (!DecodePoint(sig.subspan(0, 64), r) || r.infinity) {
    return false;
  }
  const UInt256 s = UInt256::FromBytesBE(sig.subspan(64, 32));
  if (Cmp(s, Secp256k1N()) >= 0) {
    return false;
  }
  const UInt256 e = Challenge(r, pub, msg);
  // Check s*G == R + e*P.
  const AffinePoint lhs = ScalarMulBase(s);
  const AffinePoint ep = ScalarMul(e, pub);
  const JacobianPoint sum = PointAddMixed(JacobianPoint::FromAffine(r), ep);
  const AffinePoint rhs = ToAffine(sum);
  return lhs == rhs;
}

namespace {

// Scalar fallback: verify one by one, reporting the first invalid index.
SchnorrBatchResult BatchFallback(const std::vector<SchnorrBatchInput>& batch) {
  SchnorrBatchResult result;
  for (size_t i = 0; i < batch.size(); ++i) {
    const SchnorrBatchInput& in = batch[i];
    if (in.pub == nullptr || !SchnorrVerify(*in.pub, in.msg, in.sig)) {
      result.first_bad = static_cast<int>(i);
      return result;
    }
  }
  result.all_valid = true;
  return result;
}

}  // namespace

SchnorrBatchResult SchnorrBatchVerify(const std::vector<SchnorrBatchInput>& batch) {
  if (batch.empty()) {
    return SchnorrBatchResult{/*all_valid=*/true, /*first_bad=*/-1};
  }
  const UInt256& n = Secp256k1N();
  const size_t m = batch.size();

  // Parse and challenge every signature; any structural reject goes straight to the
  // scalar fallback (it will pinpoint the offender).
  std::vector<AffinePoint> rs(m);
  std::vector<UInt256> ss(m);
  std::vector<UInt256> es(m);
  Sha256 transcript;
  transcript.Update(AsBytes("achilles-schnorr-batch-v1"));
  for (size_t i = 0; i < m; ++i) {
    const SchnorrBatchInput& in = batch[i];
    if (in.pub == nullptr || in.pub->infinity || in.sig.size() != kSchnorrSignatureSize ||
        !DecodePoint(in.sig.subspan(0, 64), rs[i]) || rs[i].infinity) {
      return BatchFallback(batch);
    }
    ss[i] = UInt256::FromBytesBE(in.sig.subspan(64, 32));
    if (Cmp(ss[i], n) >= 0) {
      return BatchFallback(batch);
    }
    es[i] = Challenge(rs[i], *in.pub, in.msg);
    const Bytes pub_enc = EncodePoint(*in.pub);
    transcript.Update(ByteView(pub_enc.data(), pub_enc.size()));
    transcript.Update(in.msg);
    transcript.Update(in.sig);
  }
  const Hash256 seed = transcript.Finish();

  // Deterministic nonzero weights a_i from the transcript (a_0 = 1).
  std::vector<UInt256> weights(m);
  weights[0] = UInt256::FromU64(1);
  for (size_t i = 1; i < m; ++i) {
    uint8_t idx[8];
    for (int b = 0; b < 8; ++b) {
      idx[b] = static_cast<uint8_t>(i >> (8 * b));
    }
    UInt256 a = HashToScalar(ByteView(seed.data(), seed.size()), ByteView(idx, 8),
                             AsBytes("batch-weight"));
    if (a.IsZero()) {
      a = UInt256::FromU64(1);
    }
    weights[i] = a;
  }

  // (Σ a_i s_i) G  ==  Σ a_i R_i + Σ (a_i e_i) P_i, the right side as one 2m-point MSM.
  UInt256 s_comb{};
  std::vector<UInt256> msm_scalars;
  std::vector<AffinePoint> msm_points;
  msm_scalars.reserve(2 * m);
  msm_points.reserve(2 * m);
  for (size_t i = 0; i < m; ++i) {
    s_comb = AddMod(s_comb, MulMod(weights[i], ss[i], n), n);
    msm_scalars.push_back(weights[i]);
    msm_points.push_back(rs[i]);
    msm_scalars.push_back(MulMod(weights[i], es[i], n));
    msm_points.push_back(*batch[i].pub);
  }
  const AffinePoint lhs = ScalarMulBase(s_comb);
  const AffinePoint rhs = ToAffine(MultiScalarMul(msm_scalars, msm_points));
  if (lhs == rhs) {
    return SchnorrBatchResult{/*all_valid=*/true, /*first_bad=*/-1};
  }
  return BatchFallback(batch);
}

}  // namespace achilles
