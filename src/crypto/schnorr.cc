#include "src/crypto/schnorr.h"

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace achilles {

namespace {

UInt256 HashToScalar(ByteView a, ByteView b, ByteView c) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  h.Update(c);
  const Hash256 digest = h.Finish();
  const UInt256 raw = UInt256::FromBytesBE(ByteView(digest.data(), digest.size()));
  // Reduce into [0, n). A single conditional subtraction is statistically sufficient but we
  // use the generic reduction for correctness on all inputs.
  UInt512 wide{};
  for (int i = 0; i < 4; ++i) {
    wide[i] = raw.limbs[i];
  }
  return Mod512(wide, Secp256k1N());
}

UInt256 Challenge(const AffinePoint& r, const AffinePoint& pub, ByteView msg) {
  Bytes ctx = EncodePoint(r);
  Append(ctx, ByteView(EncodePoint(pub)));
  return HashToScalar(ByteView(ctx.data(), ctx.size()), msg, ByteView());
}

}  // namespace

SchnorrKeyPair SchnorrKeyFromSeed(ByteView seed) {
  uint8_t counter = 0;
  while (true) {
    Bytes material(seed.begin(), seed.end());
    material.push_back(counter++);
    const UInt256 d = HashToScalar(ByteView(material.data(), material.size()),
                                   AsBytes("schnorr-key"), ByteView());
    if (!d.IsZero()) {
      return SchnorrKeyPair{d, ScalarMulBase(d)};
    }
  }
}

Bytes SchnorrSign(const SchnorrKeyPair& key, ByteView msg) {
  const Bytes d_bytes = key.d.ToBytesBE();
  uint8_t counter = 0;
  while (true) {
    Bytes nonce_ctx = d_bytes;
    nonce_ctx.push_back(counter++);
    const UInt256 k =
        HashToScalar(ByteView(nonce_ctx.data(), nonce_ctx.size()), msg, AsBytes("nonce"));
    if (k.IsZero()) {
      continue;
    }
    const AffinePoint r = ScalarMulBase(k);
    const UInt256 e = Challenge(r, key.pub, msg);
    const UInt256 s = AddMod(k, MulMod(e, key.d, Secp256k1N()), Secp256k1N());
    Bytes sig = EncodePoint(r);
    Append(sig, ByteView(s.ToBytesBE()));
    ACHILLES_CHECK(sig.size() == kSchnorrSignatureSize);
    return sig;
  }
}

bool SchnorrVerify(const AffinePoint& pub, ByteView msg, ByteView sig) {
  if (sig.size() != kSchnorrSignatureSize || pub.infinity) {
    return false;
  }
  AffinePoint r;
  if (!DecodePoint(sig.subspan(0, 64), r) || r.infinity) {
    return false;
  }
  const UInt256 s = UInt256::FromBytesBE(sig.subspan(64, 32));
  if (Cmp(s, Secp256k1N()) >= 0) {
    return false;
  }
  const UInt256 e = Challenge(r, pub, msg);
  // Check s*G == R + e*P.
  const AffinePoint lhs = ScalarMulBase(s);
  const AffinePoint ep = ScalarMul(e, pub);
  const JacobianPoint sum = PointAddMixed(JacobianPoint::FromAffine(r), ep);
  const AffinePoint rhs = ToAffine(sum);
  return lhs == rhs;
}

}  // namespace achilles
