// Signing suite shared by a cluster. Two interchangeable backends:
//  - kSchnorr:  the real secp256k1 Schnorr implementation (slow, used in crypto tests and the
//               calibration bench);
//  - kFastHmac: HMAC-SHA-256 tags under per-party keys held by the suite. Inside the closed
//               simulation this models an unforgeable signature (no simulated party can forge
//               without the suite), while keeping large runs fast. Wire size is modeled as an
//               ECDSA signature (64 B) to match the paper's prototype.
// Either way the *cost* of signing/verifying charged to simulated CPUs comes from the
// CostModel, not from host wall-clock, so the backend choice never changes measured results.
#ifndef SRC_CRYPTO_SIGNER_H_
#define SRC_CRYPTO_SIGNER_H_

#include <cstdint>
#include <vector>

#include "src/crypto/hmac.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"

namespace achilles {

enum class SignatureScheme {
  kSchnorr,
  kFastHmac,
};

struct Signature {
  uint32_t signer = 0;
  Bytes blob;

  // Bytes this signature occupies on the wire (id + blob).
  size_t WireSize() const { return 4 + blob.size(); }
  bool empty() const { return blob.empty(); }
};

class CryptoSuite {
 public:
  CryptoSuite(SignatureScheme scheme, uint32_t num_parties, uint64_t seed);

  SignatureScheme scheme() const { return scheme_; }
  uint32_t num_parties() const { return num_parties_; }

  Signature Sign(uint32_t signer, ByteView msg) const;
  bool Verify(const Signature& sig, ByteView msg) const;

  // Verifies a quorum of signatures over the same message: all valid, all signers distinct,
  // and at least `quorum` of them.
  bool VerifyQuorum(const std::vector<Signature>& sigs, ByteView msg, size_t quorum) const;

  const AffinePoint& PublicKey(uint32_t party) const;

 private:
  SignatureScheme scheme_;
  uint32_t num_parties_;
  std::vector<SchnorrKeyPair> schnorr_keys_;  // kSchnorr only.
  std::vector<Hash256> hmac_keys_;            // kFastHmac only.
  std::vector<HmacKey> hmac_scheds_;          // kFastHmac only: precomputed key schedules.
};

}  // namespace achilles

#endif  // SRC_CRYPTO_SIGNER_H_
