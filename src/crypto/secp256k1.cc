#include "src/crypto/secp256k1.h"

#include "src/common/check.h"

namespace achilles {

namespace {

// p = 2^256 - kFoldC, with kFoldC = 2^32 + 977. The fold constant drives fast reduction:
// 2^256 ≡ kFoldC (mod p).
constexpr uint64_t kFoldC = 0x1000003D1ULL;

const UInt256 kP = UInt256::FromHexStr(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const UInt256 kN = UInt256::FromHexStr(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");

const AffinePoint kG = {
    UInt256::FromHexStr("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
    UInt256::FromHexStr("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
    /*infinity=*/false};

// Reduces a 512-bit product modulo p using two folds of the high half.
UInt256 ReduceP(const UInt512& x) {
  uint64_t r[4];
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 cur =
        static_cast<unsigned __int128>(x[i]) +
        static_cast<unsigned __int128>(x[i + 4]) * kFoldC + carry;
    r[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  // carry < 2^34; fold carry * 2^256 ≡ carry * kFoldC until no overflow remains.
  uint64_t overflow = static_cast<uint64_t>(carry);
  while (overflow != 0) {
    const unsigned __int128 add = static_cast<unsigned __int128>(overflow) * kFoldC;
    const uint64_t add_limbs[2] = {static_cast<uint64_t>(add),
                                   static_cast<uint64_t>(add >> 64)};
    unsigned __int128 c = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(r[i]) + (i < 2 ? add_limbs[i] : 0) + c;
      r[i] = static_cast<uint64_t>(cur);
      c = cur >> 64;
    }
    overflow = static_cast<uint64_t>(c);
  }
  UInt256 out;
  out.limbs = {r[0], r[1], r[2], r[3]};
  while (Cmp(out, kP) >= 0) {
    UInt256 reduced;
    SubWithBorrow(out, kP, reduced);
    out = reduced;
  }
  return out;
}

}  // namespace

const UInt256& Secp256k1P() { return kP; }
const UInt256& Secp256k1N() { return kN; }
const AffinePoint& Secp256k1G() { return kG; }

UInt256 FieldAdd(const UInt256& a, const UInt256& b) { return AddMod(a, b, kP); }
UInt256 FieldSub(const UInt256& a, const UInt256& b) { return SubMod(a, b, kP); }

UInt256 FieldMul(const UInt256& a, const UInt256& b) { return ReduceP(Mul256(a, b)); }
UInt256 FieldSqr(const UInt256& a) { return ReduceP(Mul256(a, a)); }

UInt256 FieldNeg(const UInt256& a) {
  if (a.IsZero()) {
    return a;
  }
  UInt256 out;
  SubWithBorrow(kP, a, out);
  return out;
}

UInt256 FieldInv(const UInt256& a) {
  ACHILLES_CHECK(!a.IsZero());
  // a^(p-2) via square-and-multiply over the fixed exponent.
  UInt256 exp;
  SubWithBorrow(kP, UInt256::FromU64(2), exp);
  UInt256 result = UInt256::FromU64(1);
  UInt256 base = a;
  for (int i = 0; i < 256; ++i) {
    if (exp.Bit(i)) {
      result = FieldMul(result, base);
    }
    base = FieldSqr(base);
  }
  return result;
}

bool AffinePoint::operator==(const AffinePoint& o) const {
  if (infinity || o.infinity) {
    return infinity == o.infinity;
  }
  return x == o.x && y == o.y;
}

JacobianPoint JacobianPoint::Infinity() { return JacobianPoint{}; }

JacobianPoint JacobianPoint::FromAffine(const AffinePoint& p) {
  if (p.infinity) {
    return Infinity();
  }
  return JacobianPoint{p.x, p.y, UInt256::FromU64(1)};
}

JacobianPoint PointDouble(const JacobianPoint& p) {
  if (p.IsInfinity() || p.y.IsZero()) {
    return JacobianPoint::Infinity();
  }
  const UInt256 y2 = FieldSqr(p.y);
  const UInt256 s = FieldMul(FieldMul(UInt256::FromU64(4), p.x), y2);
  const UInt256 m = FieldMul(UInt256::FromU64(3), FieldSqr(p.x));  // a = 0 on secp256k1.
  const UInt256 x3 = FieldSub(FieldSqr(m), FieldMul(UInt256::FromU64(2), s));
  const UInt256 y4 = FieldSqr(y2);
  const UInt256 y3 =
      FieldSub(FieldMul(m, FieldSub(s, x3)), FieldMul(UInt256::FromU64(8), y4));
  const UInt256 z3 = FieldMul(FieldMul(UInt256::FromU64(2), p.y), p.z);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint PointAddMixed(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) {
    return p;
  }
  if (p.IsInfinity()) {
    return JacobianPoint::FromAffine(q);
  }
  const UInt256 z1z1 = FieldSqr(p.z);
  const UInt256 u2 = FieldMul(q.x, z1z1);
  const UInt256 s2 = FieldMul(FieldMul(q.y, p.z), z1z1);
  if (u2 == p.x) {
    if (s2 == p.y) {
      return PointDouble(p);
    }
    return JacobianPoint::Infinity();
  }
  const UInt256 h = FieldSub(u2, p.x);
  const UInt256 r = FieldSub(s2, p.y);
  const UInt256 h2 = FieldSqr(h);
  const UInt256 h3 = FieldMul(h, h2);
  const UInt256 v = FieldMul(p.x, h2);
  const UInt256 x3 =
      FieldSub(FieldSub(FieldSqr(r), h3), FieldMul(UInt256::FromU64(2), v));
  const UInt256 y3 = FieldSub(FieldMul(r, FieldSub(v, x3)), FieldMul(p.y, h3));
  const UInt256 z3 = FieldMul(p.z, h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint PointAdd(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.IsInfinity()) {
    return q;
  }
  if (q.IsInfinity()) {
    return p;
  }
  const UInt256 z1z1 = FieldSqr(p.z);
  const UInt256 z2z2 = FieldSqr(q.z);
  const UInt256 u1 = FieldMul(p.x, z2z2);
  const UInt256 u2 = FieldMul(q.x, z1z1);
  const UInt256 s1 = FieldMul(FieldMul(p.y, q.z), z2z2);
  const UInt256 s2 = FieldMul(FieldMul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) {
      return PointDouble(p);
    }
    return JacobianPoint::Infinity();
  }
  const UInt256 h = FieldSub(u2, u1);
  const UInt256 r = FieldSub(s2, s1);
  const UInt256 h2 = FieldSqr(h);
  const UInt256 h3 = FieldMul(h, h2);
  const UInt256 v = FieldMul(u1, h2);
  const UInt256 x3 =
      FieldSub(FieldSub(FieldSqr(r), h3), FieldMul(UInt256::FromU64(2), v));
  const UInt256 y3 = FieldSub(FieldMul(r, FieldSub(v, x3)), FieldMul(s1, h3));
  const UInt256 z3 = FieldMul(FieldMul(p.z, q.z), h);
  return JacobianPoint{x3, y3, z3};
}

AffinePoint ToAffine(const JacobianPoint& p) {
  if (p.IsInfinity()) {
    return AffinePoint{};
  }
  const UInt256 zinv = FieldInv(p.z);
  const UInt256 zinv2 = FieldSqr(zinv);
  const UInt256 zinv3 = FieldMul(zinv2, zinv);
  return AffinePoint{FieldMul(p.x, zinv2), FieldMul(p.y, zinv3), /*infinity=*/false};
}

AffinePoint ScalarMul(const UInt256& k, const AffinePoint& p) {
  if (k.IsZero() || p.infinity) {
    return AffinePoint{};
  }
  JacobianPoint acc = JacobianPoint::Infinity();
  for (int i = k.BitLength() - 1; i >= 0; --i) {
    acc = PointDouble(acc);
    if (k.Bit(i)) {
      acc = PointAddMixed(acc, p);
    }
  }
  return ToAffine(acc);
}

AffinePoint ScalarMulBase(const UInt256& k) { return ScalarMul(k, kG); }

bool IsOnCurve(const AffinePoint& p) {
  if (p.infinity) {
    return true;
  }
  if (Cmp(p.x, kP) >= 0 || Cmp(p.y, kP) >= 0) {
    return false;
  }
  const UInt256 lhs = FieldSqr(p.y);
  const UInt256 rhs = FieldAdd(FieldMul(FieldSqr(p.x), p.x), UInt256::FromU64(7));
  return lhs == rhs;
}

Bytes EncodePoint(const AffinePoint& p) {
  Bytes out(64, 0);
  if (p.infinity) {
    return out;
  }
  const Bytes x = p.x.ToBytesBE();
  const Bytes y = p.y.ToBytesBE();
  std::copy(x.begin(), x.end(), out.begin());
  std::copy(y.begin(), y.end(), out.begin() + 32);
  return out;
}

bool DecodePoint(ByteView data, AffinePoint& out) {
  if (data.size() != 64) {
    return false;
  }
  bool all_zero = true;
  for (uint8_t b : data) {
    if (b != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    out = AffinePoint{};
    return true;
  }
  out.x = UInt256::FromBytesBE(data.subspan(0, 32));
  out.y = UInt256::FromBytesBE(data.subspan(32, 32));
  out.infinity = false;
  return IsOnCurve(out);
}


JacobianPoint MultiScalarMul(const std::vector<UInt256>& scalars,
                             const std::vector<AffinePoint>& points) {
  ACHILLES_CHECK(scalars.size() == points.size());
  constexpr int kWindowBits = 4;
  constexpr int kWindows = 256 / kWindowBits;
  constexpr int kBuckets = (1 << kWindowBits) - 1;  // Digit 0 contributes nothing.

  JacobianPoint result = JacobianPoint::Infinity();
  JacobianPoint buckets[kBuckets];
  for (int win = kWindows - 1; win >= 0; --win) {
    for (int d = 0; d < kWindowBits; ++d) {
      result = PointDouble(result);
    }
    for (auto& b : buckets) {
      b = JacobianPoint::Infinity();
    }
    const int shift = win * kWindowBits;
    for (size_t i = 0; i < scalars.size(); ++i) {
      if (points[i].infinity) {
        continue;
      }
      const uint64_t limb = scalars[i].limbs[static_cast<size_t>(shift / 64)];
      const int digit = static_cast<int>((limb >> (shift % 64)) & kBuckets);
      if (digit != 0) {
        buckets[digit - 1] = PointAddMixed(buckets[digit - 1], points[i]);
      }
    }
    // Running-sum trick: sum_d d * bucket[d] with kBuckets additions.
    JacobianPoint acc = JacobianPoint::Infinity();
    JacobianPoint windows_sum = JacobianPoint::Infinity();
    for (int d = kBuckets - 1; d >= 0; --d) {
      acc = PointAdd(acc, buckets[d]);
      windows_sum = PointAdd(windows_sum, acc);
    }
    result = PointAdd(result, windows_sum);
  }
  return result;
}

}  // namespace achilles
