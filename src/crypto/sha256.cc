#include "src/crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ACHILLES_SHA_NI_POSSIBLE 1
#endif

namespace achilles {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void CompressPortable(uint32_t state[8], const uint8_t* blocks, size_t n) {
  for (size_t blk = 0; blk < n; ++blk, blocks += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(blocks[i * 4]) << 24) |
             (static_cast<uint32_t>(blocks[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(blocks[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(blocks[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef ACHILLES_SHA_NI_POSSIBLE

// SHA-NI compression (Intel's canonical register layout: ABEF/CDGH pairs). Produces the
// same digests as CompressPortable; correctness is cross-checked by ShaNiMatchesPortable
// in tests/crypto_test.cc.
__attribute__((target("sha,sse4.1,ssse3")))
void CompressShaNi(uint32_t state[8], const uint8_t* blocks, size_t n) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Load state as the ABEF/CDGH pairs the sha256rnds2 instruction expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);  // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);  // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);    // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);         // CDGH

  for (size_t blk = 0; blk < n; ++blk, blocks += 64) {
    const __m128i save0 = st0;
    const __m128i save1 = st1;

    // Message schedule kept in four rotating W-groups of four words each.
    __m128i w[4];
    for (int g = 0; g < 4; ++g) {
      const __m128i raw =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + g * 16));
      w[g] = _mm_shuffle_epi8(raw, kByteSwap);
    }

    for (int g = 0; g < 16; ++g) {
      __m128i msg = _mm_add_epi32(
          w[g & 3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[g * 4])));
      st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
      if (g >= 3 && g < 15) {
        // Next W-group: W[i] = W[i-16] + s0(W[i-15]) + W[i-7] + s1(W[i-2]).
        const __m128i w7 = _mm_alignr_epi8(w[g & 3], w[(g + 3) & 3], 4);
        w[(g + 1) & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(w[(g + 1) & 3], w[(g + 2) & 3]), w7),
            w[g & 3]);
      }
    }

    st0 = _mm_add_epi32(st0, save0);
    st1 = _mm_add_epi32(st1, save1);
  }

  tmp = _mm_shuffle_epi32(st0, 0x1B);  // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);  // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);  // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

#endif  // ACHILLES_SHA_NI_POSSIBLE

using CompressFn = void (*)(uint32_t state[8], const uint8_t* blocks, size_t n);

CompressFn PickCompress() {
#ifdef ACHILLES_SHA_NI_POSSIBLE
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
    return &CompressShaNi;
  }
#endif
  return &CompressPortable;
}

const CompressFn g_compress = PickCompress();

}  // namespace

bool Sha256UsesHardware() { return g_compress != &CompressPortable; }

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buffer_len_ = 0;
}

Sha256::Midstate Sha256::SaveMidstate() const {
  Midstate ms;
  std::memcpy(ms.state, state_, sizeof(ms.state));
  return ms;
}

void Sha256::RestoreMidstate(const Midstate& ms, uint64_t bytes_processed) {
  std::memcpy(state_, ms.state, sizeof(state_));
  total_len_ = bytes_processed;
  buffer_len_ = 0;
}

void Sha256::ProcessBlocks(const uint8_t* blocks, size_t n) {
  (portable_ ? &CompressPortable : g_compress)(state_, blocks, n);
}

void Sha256::Update(ByteView data) {
  total_len_ += data.size();
  size_t offset = 0;
  if (buffer_len_ > 0) {
    const size_t need = 64 - buffer_len_;
    const size_t take = std::min(need, data.size());
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      ProcessBlocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (offset + 64 <= data.size()) {
    const size_t whole = (data.size() - offset) / 64;
    ProcessBlocks(data.data() + offset, whole);
    offset += whole * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Hash256 Sha256::Finish() {
  const uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian length.
  uint8_t pad[72];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  const size_t rem = (buffer_len_ + 1) % 64;
  const size_t zeros = (rem <= 56) ? (56 - rem) : (120 - rem);
  std::memset(pad + pad_len, 0, zeros);
  pad_len += zeros;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  Update(ByteView(pad, pad_len));

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  Reset();
  return out;
}

Hash256 Sha256Digest(ByteView data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Hash256 Sha256DigestPortable(ByteView data) {
  Sha256 h;
  h.ForcePortable();
  h.Update(data);
  return h.Finish();
}

Hash256 HashPair(const Hash256& a, const Hash256& b) {
  Sha256 h;
  h.Update(ByteView(a.data(), a.size()));
  h.Update(ByteView(b.data(), b.size()));
  return h.Finish();
}

std::string HashToHex(const Hash256& h) { return ToHex(ByteView(h.data(), h.size())); }

std::string HashAbbrev(const Hash256& h) {
  return ToHex(ByteView(h.data(), 4));
}

}  // namespace achilles
