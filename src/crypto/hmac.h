// HMAC-SHA-256 (RFC 2104). Backs sealed-storage authentication and the fast signature mode.
//
// HmacKey precomputes the ipad/opad compression midstates for a key, so each MAC under a
// long-lived key (the per-party fast-signature keys) costs two fewer SHA-256 compressions
// than the one-shot HmacSha256. Outputs are bit-identical either way.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/crypto/sha256.h"

namespace achilles {

// Precomputed HMAC key schedule for a long-lived key.
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(ByteView key);

  Hash256 Mac(ByteView message) const;

 private:
  Sha256::Midstate inner_{};  // State after compressing key ^ ipad.
  Sha256::Midstate outer_{};  // State after compressing key ^ opad.
};

Hash256 HmacSha256(ByteView key, ByteView message);

// HKDF-like key derivation: HMAC(key, label || context).
Hash256 DeriveKey(ByteView key, const std::string& label, ByteView context);

}  // namespace achilles

#endif  // SRC_CRYPTO_HMAC_H_
