// HMAC-SHA-256 (RFC 2104). Backs sealed-storage authentication and the fast signature mode.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/crypto/sha256.h"

namespace achilles {

Hash256 HmacSha256(ByteView key, ByteView message);

// HKDF-like key derivation: HMAC(key, label || context).
Hash256 DeriveKey(ByteView key, const std::string& label, ByteView context);

}  // namespace achilles

#endif  // SRC_CRYPTO_HMAC_H_
