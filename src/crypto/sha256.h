// SHA-256 (FIPS 180-4). Used for block hashes, certificate digests, sealing MACs, and as
// the PRF behind the fast signature mode.
//
// Two interchangeable compressors produce bit-identical digests: a portable from-scratch
// one, and an x86 SHA-NI one selected at startup when the CPU supports it
// (__builtin_cpu_supports("sha")). The hot simulator paths hash millions of blocks per
// run, so the hardware path matters for wall-clock only — virtual-time crypto costs come
// from the CostModel and never depend on which compressor ran.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace achilles {

using Hash256 = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(ByteView data);
  Hash256 Finish();
  void Reset();

  // Compression state captured at a 64-byte input boundary. Lets HMAC precompute the
  // per-key ipad/opad block once and replay it per message (src/crypto/hmac.h), halving
  // the fixed compressions of every MAC.
  struct Midstate {
    uint32_t state[8];
  };
  // Valid only when the bytes consumed so far are a multiple of 64.
  Midstate SaveMidstate() const;
  // Resets, then resumes as if `bytes_processed` bytes (a multiple of 64) had been hashed.
  void RestoreMidstate(const Midstate& ms, uint64_t bytes_processed);

  // Pins this instance to the portable compressor (differential tests against SHA-NI).
  void ForcePortable() { portable_ = true; }

 private:
  void ProcessBlocks(const uint8_t* blocks, size_t n);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  bool portable_ = false;
};

// One-shot convenience.
Hash256 Sha256Digest(ByteView data);

// One-shot digest forced through the portable compressor (differential tests).
Hash256 Sha256DigestPortable(ByteView data);

// True when new Sha256 instances compress with the hardware (SHA-NI) path.
bool Sha256UsesHardware();

// Hash of the concatenation of two hashes (chain/Merkle links).
Hash256 HashPair(const Hash256& a, const Hash256& b);

// Hex string of a hash (for logs and ids).
std::string HashToHex(const Hash256& h);

// Short prefix for logging.
std::string HashAbbrev(const Hash256& h);

constexpr Hash256 ZeroHash() { return Hash256{}; }

}  // namespace achilles

#endif  // SRC_CRYPTO_SHA256_H_
