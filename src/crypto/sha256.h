// From-scratch SHA-256 (FIPS 180-4). Used for block hashes, certificate digests, sealing
// MACs, and as the PRF behind the fast signature mode.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace achilles {

using Hash256 = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(ByteView data);
  Hash256 Finish();
  void Reset();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

// One-shot convenience.
Hash256 Sha256Digest(ByteView data);

// Hash of the concatenation of two hashes (chain/Merkle links).
Hash256 HashPair(const Hash256& a, const Hash256& b);

// Hex string of a hash (for logs and ids).
std::string HashToHex(const Hash256& h);

// Short prefix for logging.
std::string HashAbbrev(const Hash256& h);

constexpr Hash256 ZeroHash() { return Hash256{}; }

}  // namespace achilles

#endif  // SRC_CRYPTO_SHA256_H_
