#include "src/crypto/uint256.h"

#include "src/common/check.h"

namespace achilles {

UInt256 UInt256::FromU64(uint64_t v) {
  UInt256 out;
  out.limbs[0] = v;
  return out;
}

UInt256 UInt256::FromBytesBE(ByteView be32) {
  UInt256 out;
  if (be32.size() != 32) {
    return out;
  }
  for (int limb = 0; limb < 4; ++limb) {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v = (v << 8) | be32[(3 - limb) * 8 + b];
    }
    out.limbs[limb] = v;
  }
  return out;
}

UInt256 UInt256::FromHexStr(const std::string& hex) {
  std::string padded = hex;
  while (padded.size() < 64) {
    padded.insert(padded.begin(), '0');
  }
  const Bytes b = FromHex(padded);
  if (b.size() != 32) {
    return UInt256{};
  }
  return FromBytesBE(ByteView(b.data(), b.size()));
}

Bytes UInt256::ToBytesBE() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    const uint64_t v = limbs[limb];
    for (int b = 0; b < 8; ++b) {
      out[(3 - limb) * 8 + (7 - b)] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

std::string UInt256::ToHexStr() const {
  const Bytes b = ToBytesBE();
  return ToHex(ByteView(b.data(), b.size()));
}

bool UInt256::IsZero() const {
  return (limbs[0] | limbs[1] | limbs[2] | limbs[3]) == 0;
}

bool UInt256::Bit(int i) const {
  return (limbs[static_cast<size_t>(i) / 64] >> (static_cast<size_t>(i) % 64)) & 1;
}

int UInt256::BitLength() const {
  for (int limb = 3; limb >= 0; --limb) {
    if (limbs[limb] != 0) {
      return limb * 64 + 64 - __builtin_clzll(limbs[limb]);
    }
  }
  return 0;
}

int Cmp(const UInt256& a, const UInt256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limbs[i] < b.limbs[i]) {
      return -1;
    }
    if (a.limbs[i] > b.limbs[i]) {
      return 1;
    }
  }
  return 0;
}

uint64_t AddWithCarry(const UInt256& a, const UInt256& b, UInt256& out) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(a.limbs[i]) + b.limbs[i] + carry;
    out.limbs[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  return static_cast<uint64_t>(carry);
}

uint64_t SubWithBorrow(const UInt256& a, const UInt256& b, UInt256& out) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 diff =
        static_cast<unsigned __int128>(a.limbs[i]) - b.limbs[i] - borrow;
    out.limbs[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
  return static_cast<uint64_t>(borrow);
}

UInt512 Mul256(const UInt256& a, const UInt256& b) {
  UInt512 out{};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur = static_cast<unsigned __int128>(a.limbs[i]) * b.limbs[j] +
                                    out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + 4] += carry;
  }
  return out;
}

UInt256 Mod512(const UInt512& x, const UInt256& m) {
  ACHILLES_CHECK(!m.IsZero());
  UInt256 rem{};
  for (int bit = 511; bit >= 0; --bit) {
    // rem = rem*2 + x_bit, then conditionally subtract m. rem < m before the shift, so the
    // shifted value is < 2m and a single subtraction restores the invariant. A carry out of
    // the top limb means the value crossed 2^256 > m, so subtraction is mandatory then.
    uint64_t carry = rem.limbs[3] >> 63;
    for (int i = 3; i > 0; --i) {
      rem.limbs[i] = (rem.limbs[i] << 1) | (rem.limbs[i - 1] >> 63);
    }
    rem.limbs[0] = (rem.limbs[0] << 1) |
                   ((x[static_cast<size_t>(bit) / 64] >> (static_cast<size_t>(bit) % 64)) & 1);
    if (carry != 0 || Cmp(rem, m) >= 0) {
      UInt256 reduced;
      SubWithBorrow(rem, m, reduced);
      rem = reduced;
    }
  }
  return rem;
}

UInt256 AddMod(const UInt256& a, const UInt256& b, const UInt256& m) {
  UInt256 sum;
  const uint64_t carry = AddWithCarry(a, b, sum);
  if (carry != 0 || Cmp(sum, m) >= 0) {
    UInt256 reduced;
    SubWithBorrow(sum, m, reduced);
    return reduced;
  }
  return sum;
}

UInt256 SubMod(const UInt256& a, const UInt256& b, const UInt256& m) {
  UInt256 diff;
  const uint64_t borrow = SubWithBorrow(a, b, diff);
  if (borrow != 0) {
    UInt256 fixed;
    AddWithCarry(diff, m, fixed);
    return fixed;
  }
  return diff;
}

UInt256 MulMod(const UInt256& a, const UInt256& b, const UInt256& m) {
  return Mod512(Mul256(a, b), m);
}

}  // namespace achilles
