// 256-bit unsigned integer arithmetic for the elliptic-curve layer. Little-endian 64-bit
// limbs. Only the operations the curve needs are provided; everything is constant-size.
#ifndef SRC_CRYPTO_UINT256_H_
#define SRC_CRYPTO_UINT256_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace achilles {

struct UInt256 {
  // limbs[0] is least significant.
  std::array<uint64_t, 4> limbs{0, 0, 0, 0};

  static UInt256 FromU64(uint64_t v);
  static UInt256 FromBytesBE(ByteView be32);  // Exactly 32 bytes; extra bytes rejected via 0.
  static UInt256 FromHexStr(const std::string& hex);

  Bytes ToBytesBE() const;
  std::string ToHexStr() const;

  bool IsZero() const;
  bool Bit(int i) const;  // i in [0, 255].
  int BitLength() const;

  bool operator==(const UInt256& o) const { return limbs == o.limbs; }
  bool operator!=(const UInt256& o) const { return !(*this == o); }
};

// Returns -1/0/1 for a<b, a==b, a>b.
int Cmp(const UInt256& a, const UInt256& b);

// out = a + b, returns carry-out bit.
uint64_t AddWithCarry(const UInt256& a, const UInt256& b, UInt256& out);

// out = a - b, returns borrow-out bit.
uint64_t SubWithBorrow(const UInt256& a, const UInt256& b, UInt256& out);

// 512-bit product container (8 limbs little-endian).
using UInt512 = std::array<uint64_t, 8>;

UInt512 Mul256(const UInt256& a, const UInt256& b);

// Generic x mod m via binary long division over 512 bits. m must be nonzero.
UInt256 Mod512(const UInt512& x, const UInt256& m);

// Modular helpers built on the generic reduction (used for the group order n).
UInt256 AddMod(const UInt256& a, const UInt256& b, const UInt256& m);
UInt256 SubMod(const UInt256& a, const UInt256& b, const UInt256& m);
UInt256 MulMod(const UInt256& a, const UInt256& b, const UInt256& m);

}  // namespace achilles

#endif  // SRC_CRYPTO_UINT256_H_
