#include "src/client/kv_client.h"

#include <algorithm>

namespace achilles {

using app::KvOpKind;
using app::KvOpRecord;

KvClientProcess::KvClientProcess(Host* host, Network* net, const KvClientConfig& config,
                                 obs::MetricsRegistry* metrics)
    : host_(host),
      net_(net),
      config_(config),
      rng_(host->sim().rng().Fork()),
      sessions_(config.num_sessions) {
  if (metrics != nullptr) {
    read_latency_ = metrics->GetHistogram("app.read_latency_ns");
    write_latency_ = metrics->GetHistogram("app.write_latency_ns");
    lease_read_latency_ = metrics->GetHistogram("app.lease_read_latency_ns");
    ops_completed_ = metrics->GetCounter("app.ops_completed");
    lease_fallbacks_ = metrics->GetCounter("app.lease_fallbacks");
  }
}

void KvClientProcess::OnStart() {
  for (uint32_t s = 0; s < config_.num_sessions; ++s) {
    StartNextOp(s);
  }
  host_->SetTimer(config_.resubmit_interval, [this] { ResubmitOutstanding(); });
}

void KvClientProcess::StartNextOp(uint32_t session) {
  KvOpRecord op;
  op.op_id = Transaction::MakeId(host_->id(), next_seq_++);
  op.client = session;
  op.key = static_cast<uint32_t>(rng_.UniformU64(config_.key_space));
  op.kind = rng_.Chance(config_.read_ratio) ? KvOpKind::kGet : KvOpKind::kPut;
  op.invoke = host_->LocalNow();
  const size_t idx = history_.ops.size();
  history_.ops.push_back(op);
  sessions_[session].active_op = idx;
  if (op.kind == KvOpKind::kPut) {
    history_.ops[idx].value = op.op_id;  // PUT value is the tx id (globally unique).
    SubmitOrdered(idx);
  } else {
    pending_lease_[op.op_id] = PendingLeaseRead{idx, 0};
    SendLeaseRead(op.op_id);
  }
}

void KvClientProcess::SendLeaseRead(uint64_t op_id) {
  auto it = pending_lease_.find(op_id);
  if (it == pending_lease_.end()) {
    return;
  }
  const uint32_t attempt = it->second.attempt;
  auto req = std::make_shared<app::KvReadRequestMsg>();
  req->op_id = op_id;
  req->key = history_.ops[it->second.op_idx].key;
  net_->Send(host_->id(), config_.first_replica_host + read_target_, req);
  // Timeout guard: only fires if this exact attempt is still outstanding.
  host_->SetTimer(config_.lease_read_timeout, [this, op_id, attempt] {
    auto lit = pending_lease_.find(op_id);
    if (lit != pending_lease_.end() && lit->second.attempt == attempt) {
      OnLeaseReadFailure(op_id);
    }
  });
}

void KvClientProcess::OnLeaseReadFailure(uint64_t op_id) {
  auto it = pending_lease_.find(op_id);
  if (it == pending_lease_.end()) {
    return;
  }
  read_target_ = (read_target_ + 1) % config_.num_replicas;
  ++it->second.attempt;
  if (it->second.attempt < config_.lease_read_attempts) {
    SendLeaseRead(op_id);
    return;
  }
  // Fast path exhausted: read through the log instead. Same op id, same invoke time — the
  // invocation began when the client first asked.
  const size_t op_idx = it->second.op_idx;
  pending_lease_.erase(it);
  if (lease_fallbacks_ != nullptr) {
    lease_fallbacks_->Inc();
  }
  SubmitOrdered(op_idx);
}

void KvClientProcess::SubmitOrdered(size_t op_idx) {
  const KvOpRecord& op = history_.ops[op_idx];
  outstanding_txs_[op.op_id] = op_idx;
  auto msg = std::make_shared<ClientSubmitMsg>();
  msg->txs.push_back(Transaction{op.op_id, host_->LocalNow(), config_.payload_size,
                                 app::EncodeKvOp(op.kind, op.key)});
  for (uint32_t r = 0; r < config_.num_replicas; ++r) {
    net_->Send(host_->id(), config_.first_replica_host + r, msg);
  }
}

void KvClientProcess::ResubmitOutstanding() {
  if (!outstanding_txs_.empty()) {
    auto msg = std::make_shared<ClientSubmitMsg>();
    const SimTime now = host_->LocalNow();
    // Deterministic order: collect and sort ids (unordered_map iteration is not stable).
    std::vector<uint64_t> ids;
    ids.reserve(outstanding_txs_.size());
    for (const auto& [id, idx] : outstanding_txs_) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids) {
      const KvOpRecord& op = history_.ops[outstanding_txs_[id]];
      msg->txs.push_back(
          Transaction{id, now, config_.payload_size, app::EncodeKvOp(op.kind, op.key)});
    }
    for (uint32_t r = 0; r < config_.num_replicas; ++r) {
      net_->Send(host_->id(), config_.first_replica_host + r, msg);
    }
  }
  host_->SetTimer(config_.resubmit_interval, [this] { ResubmitOutstanding(); });
}

void KvClientProcess::OnMessage(uint32_t /*from*/, const MessageRef& msg) {
  host_->ChargeCpu(Us(2));
  if (auto reply = std::dynamic_pointer_cast<const app::KvReadReplyMsg>(msg)) {
    OnReadReply(*reply);
    return;
  }
  if (auto applied = std::dynamic_pointer_cast<const app::KvAppliedMsg>(msg)) {
    OnApplied(*applied);
    return;
  }
}

void KvClientProcess::OnReadReply(const app::KvReadReplyMsg& reply) {
  auto it = pending_lease_.find(reply.op_id);
  if (it == pending_lease_.end()) {
    return;  // Late reply after fallback or completion.
  }
  if (!reply.served) {
    OnLeaseReadFailure(reply.op_id);
    return;
  }
  const size_t op_idx = it->second.op_idx;
  KvOpRecord& op = history_.ops[op_idx];
  op.value = reply.cell.value;
  op.version = reply.cell.version;
  op.lease_read = true;
  op.server = reply.server;
  pending_lease_.erase(it);
  // Success renews stickiness on the serving replica.
  read_target_ = reply.server;
  CompleteOp(op_idx, host_->LocalNow());
}

void KvClientProcess::OnApplied(const app::KvAppliedMsg& msg) {
  if (msg.block == nullptr || msg.block->height <= mirror_.height()) {
    return;
  }
  BlockProgress& bp = progress_[msg.block->hash];
  bp.block = msg.block;
  bp.proposer = msg.proposer;
  bp.senders.insert(msg.replica);
  bp.proposer_seen |= msg.replica == msg.proposer;
  if (bp.proposer_seen || bp.senders.size() >= static_cast<size_t>(config_.f) + 1) {
    confirmed_.emplace(msg.block->height, bp);
    progress_.erase(msg.block->hash);
    ApplyConfirmedBlocks();
  }
}

void KvClientProcess::ApplyConfirmedBlocks() {
  const SimTime now = host_->LocalNow();
  while (true) {
    auto it = confirmed_.find(mirror_.height() + 1);
    if (it == confirmed_.end() || !mirror_.CanApply(it->second.block)) {
      break;
    }
    const NodeId proposer = it->second.proposer;
    mirror_.ApplyBlock(it->second.block, [this, proposer, now](const Transaction& tx,
                                                               KvOpKind /*kind*/,
                                                               uint32_t /*key*/,
                                                               const app::KvCell& cell) {
      auto oit = outstanding_txs_.find(tx.id);
      if (oit == outstanding_txs_.end()) {
        return;  // Someone else's transaction (background load has no KV ops anyway).
      }
      KvOpRecord& op = history_.ops[oit->second];
      op.value = cell.value;
      op.version = cell.version;
      op.server = proposer;
      const size_t idx = oit->second;
      outstanding_txs_.erase(oit);
      CompleteOp(idx, now);
    });
    confirmed_.erase(it);
  }
}

void KvClientProcess::CompleteOp(size_t op_idx, SimTime now) {
  KvOpRecord& op = history_.ops[op_idx];
  if (op.complete()) {
    return;
  }
  op.response = now;
  ++completed_ops_;
  if (ops_completed_ != nullptr) {
    ops_completed_->Inc();
  }
  const int64_t latency = now - op.invoke;
  if (op.kind == KvOpKind::kPut) {
    if (write_latency_ != nullptr) {
      write_latency_->Record(latency);
    }
  } else {
    if (read_latency_ != nullptr) {
      read_latency_->Record(latency);
    }
    if (op.lease_read && lease_read_latency_ != nullptr) {
      lease_read_latency_->Record(latency);
    }
  }
  for (uint32_t s = 0; s < sessions_.size(); ++s) {
    if (sessions_[s].active_op == op_idx) {
      sessions_[s].active_op = SIZE_MAX;
      host_->SetTimer(config_.think, [this, s] { StartNextOp(s); });
      return;
    }
  }
}

}  // namespace achilles
