#include "src/client/client.h"

namespace achilles {

ClientProcess::ClientProcess(Host* host, Network* net, CommitTracker* tracker,
                             const ClientConfig& config)
    : host_(host), net_(net), tracker_(tracker), config_(config) {}

void ClientProcess::OnStart() { Tick(); }

void ClientProcess::Tick() {
  if (config_.rate_tps > 0.0) {
    // Open loop: accumulate fractional transactions per tick.
    rate_carry_ +=
        config_.rate_tps * (static_cast<double>(config_.tick) / kSecond);
    const size_t due = static_cast<size_t>(rate_carry_);
    rate_carry_ -= static_cast<double>(due);
    size_t remaining = due;
    while (remaining > 0) {
      const size_t take = std::min(remaining, config_.chunk);
      SubmitChunk(take);
      remaining -= take;
    }
  } else {
    // Saturating: top up to the outstanding cap.
    const uint64_t committed = tracker_->total_committed_txs();
    const uint64_t outstanding = next_seq_ - std::min<uint64_t>(committed, next_seq_);
    if (outstanding < config_.max_outstanding) {
      size_t budget = config_.max_outstanding - outstanding;
      while (budget > 0) {
        const size_t take = std::min(budget, config_.chunk);
        SubmitChunk(take);
        budget -= take;
      }
    }
  }
  host_->SetTimer(config_.tick, [this] { Tick(); });
}

void ClientProcess::SubmitChunk(size_t count) {
  auto msg = std::make_shared<ClientSubmitMsg>();
  msg->txs.reserve(count);
  const SimTime now = host_->LocalNow();
  for (size_t i = 0; i < count; ++i) {
    msg->txs.push_back(Transaction{Transaction::MakeId(host_->id(), next_seq_++), now,
                                   config_.payload_size});
  }
  for (uint32_t r = 0; r < config_.num_replicas; ++r) {
    net_->Send(host_->id(), config_.first_replica_host + r, msg);
  }
}

void ClientProcess::OnMessage(uint32_t /*from*/, const MessageRef& msg) {
  auto reply = std::dynamic_pointer_cast<const ClientReplyMsg>(msg);
  if (reply == nullptr || reply->block == nullptr) {
    return;
  }
  // Reply validation is kept cheap: the paper spreads clients over many machines, so the
  // client must not become a simulated bottleneck.
  host_->ChargeCpu(Us(2));
  confirmed_txs_ += reply->block->txs.size();
  // The reply's causal chain attributes this block's confirmation latency.
  tracker_->OnClientConfirm(reply->block, host_->LocalNow(), &host_->current_path());
}

}  // namespace achilles
