// Closed-loop KV client population: a fixed set of sessions, each issuing one operation at
// a time against the replicated KV app (src/app) and recording a complete invocation /
// response history with virtual-time intervals — the input to the linearizability checker
// (src/chaos/linearizability.h).
//
// Reads try the lease fast path first: a KvReadRequestMsg to a sticky read target (the last
// replica that served this client successfully). A decline or timeout rotates the target;
// after `lease_read_attempts` failures the read falls back to an ordered GET through the
// log. Stickiness matters for the oracle self-test: it keeps reads flowing to a deposed
// leaseholder, which is exactly where a broken lease serves stale state.
//
// Writes (and fallback GETs) are submitted as transactions to every replica and periodically
// resubmitted (mempools are volatile; a reboot forgets pooled requests, and dedup by tx id
// makes retransmission free). An operation completes when the client has applied the block
// containing it to its own mirror AND the block is confirmed by its proposer or by f+1
// distinct replicas — the lease-compatible completion rule: the proposer's own release is
// gated by the same withholding promises that protect a live lease.
#ifndef SRC_CLIENT_KV_CLIENT_H_
#define SRC_CLIENT_KV_CLIENT_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/app/kv_service.h"
#include "src/common/rng.h"
#include "src/sim/host.h"
#include "src/sim/network.h"

namespace achilles {

struct KvClientConfig {
  uint32_t num_replicas = 3;
  uint32_t first_replica_host = 0;
  uint32_t f = 1;                          // Completion quorum is f+1 (or the proposer).
  uint32_t num_sessions = 4;               // Concurrent closed-loop sessions.
  uint32_t key_space = 8;                  // Keys drawn uniformly from [0, key_space).
  double read_ratio = 0.7;
  SimDuration think = Ms(2);               // Pause between an op's response and the next.
  SimDuration lease_read_timeout = Ms(30);
  uint32_t lease_read_attempts = 2;        // Fast-path tries before the ordered fallback.
  SimDuration resubmit_interval = Ms(500); // Outstanding-tx retransmission period.
  uint32_t payload_size = 64;
};

class KvClientProcess : public IProcess {
 public:
  KvClientProcess(Host* host, Network* net, const KvClientConfig& config,
                  obs::MetricsRegistry* metrics);

  void OnStart() override;
  void OnMessage(uint32_t from, const MessageRef& msg) override;

  // Every operation ever invoked, in invocation order; pending ops keep response == -1.
  const std::vector<app::KvOpRecord>& ops() const { return history_.ops; }
  app::KvHistory HistorySnapshot() const { return history_; }
  uint64_t completed_ops() const { return completed_ops_; }
  const app::KvState& mirror() const { return mirror_; }

 private:
  struct Session {
    size_t active_op = SIZE_MAX;  // Index into history_.ops; SIZE_MAX = thinking.
  };
  struct PendingLeaseRead {
    size_t op_idx = 0;  // Index into history_.ops.
    uint32_t attempt = 0;
  };
  // Applied-notification bookkeeping per block until it confirms.
  struct BlockProgress {
    BlockPtr block;
    NodeId proposer = kNoNode;
    std::set<NodeId> senders;
    bool proposer_seen = false;
  };

  void StartNextOp(uint32_t session);
  void SendLeaseRead(uint64_t op_id);
  void OnLeaseReadFailure(uint64_t op_id);
  void SubmitOrdered(size_t op_idx);
  void ResubmitOutstanding();
  void OnReadReply(const app::KvReadReplyMsg& reply);
  void OnApplied(const app::KvAppliedMsg& msg);
  void ApplyConfirmedBlocks();
  void CompleteOp(size_t op_idx, SimTime now);

  Host* host_;
  Network* net_;
  KvClientConfig config_;
  Rng rng_;

  app::KvHistory history_;
  std::vector<Session> sessions_;
  uint32_t next_seq_ = 0;
  uint32_t read_target_ = 0;  // Sticky lease-read target (replica index).
  uint64_t completed_ops_ = 0;

  std::unordered_map<uint64_t, PendingLeaseRead> pending_lease_;
  std::unordered_map<uint64_t, size_t> outstanding_txs_;  // tx id -> history index.
  std::unordered_map<Hash256, BlockProgress, Hash256Hasher> progress_;
  std::map<Height, BlockProgress> confirmed_;  // Confirmed, not yet applied to the mirror.
  app::KvState mirror_;

  obs::Histogram* read_latency_ = nullptr;
  obs::Histogram* write_latency_ = nullptr;
  obs::Histogram* lease_read_latency_ = nullptr;
  obs::Counter* ops_completed_ = nullptr;
  obs::Counter* lease_fallbacks_ = nullptr;
};

}  // namespace achilles

#endif  // SRC_CLIENT_KV_CLIENT_H_
