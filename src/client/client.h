// Simulated client population running on its own host. Two modes:
//  - rate mode: open-loop Poisson-paced submissions at a target tx/s;
//  - saturating mode (rate 0): keeps a bounded number of transactions outstanding so replica
//    mempools never run dry without growing unboundedly.
// Replies feed end-to-end latency: the first valid reply per block confirms it (reply
// responsiveness — certificates make one reply sufficient).
#ifndef SRC_CLIENT_CLIENT_H_
#define SRC_CLIENT_CLIENT_H_

#include "src/consensus/commit_tracker.h"
#include "src/consensus/messages.h"
#include "src/sim/network.h"

namespace achilles {

struct ClientConfig {
  uint32_t payload_size = 256;
  double rate_tps = 0.0;            // 0 = saturating mode.
  size_t chunk = 200;               // Transactions per submit message.
  size_t max_outstanding = 4000;    // Saturating mode: cap on uncommitted submissions.
  SimDuration tick = Ms(1);         // Pacing granularity.
  uint32_t num_replicas = 3;        // Submissions go to every replica...
  uint32_t first_replica_host = 0;  // ...starting at this host id (instances may offset).
};

class ClientProcess : public IProcess {
 public:
  ClientProcess(Host* host, Network* net, CommitTracker* tracker, const ClientConfig& config);

  void OnStart() override;
  void OnMessage(uint32_t from, const MessageRef& msg) override;

  uint64_t submitted() const { return next_seq_; }

 private:
  void Tick();
  void SubmitChunk(size_t count);

  Host* host_;
  Network* net_;
  CommitTracker* tracker_;
  ClientConfig config_;
  uint32_t next_seq_ = 0;
  uint64_t confirmed_txs_ = 0;
  double rate_carry_ = 0.0;
};

}  // namespace achilles

#endif  // SRC_CLIENT_CLIENT_H_
