// Basic HotStuff (Yin et al., PODC'19): the non-TEE ancestor of Damysus/Achilles.
// n = 3f+1, quorum 2f+1, three voting phases (PREPARE / PRE-COMMIT / COMMIT) plus DECIDE —
// eight communication steps end to end, no trusted components, safety from the locking
// rule instead of non-equivocation hardware. Included to quantify what the TEE buys
// (bench_context_protocols): HotStuff 8 steps/3f+1 -> Damysus 6/2f+1 -> Achilles 4/2f+1.
//
// Stable storage: the safety-critical tuple (current view, highest prepare QC, locked QC)
// goes to the host record store with an fsync before any vote or NEW-VIEW that reflects it
// leaves the node. On reboot the constructor restores the tuple and OnStart re-enters
// view+1 — the restored view was potentially voted in, so it is burned, which is what
// prevents a second PREPARE vote there. Blocks are not persisted: the QC hashes are
// content addresses and the fetch protocol backfills bodies from peers.
#ifndef SRC_HOTSTUFF_REPLICA_H_
#define SRC_HOTSTUFF_REPLICA_H_

#include <map>

#include "src/consensus/certificates.h"
#include "src/consensus/replica_base.h"
#include "src/sim/process.h"

namespace achilles {

inline constexpr const char* kHsNewView = "hotstuff/NEW-VIEW";
inline constexpr const char* kHsPrepare = "hotstuff/PREPARE";
inline constexpr const char* kHsPreCommit = "hotstuff/PRE-COMMIT";
inline constexpr const char* kHsCommit = "hotstuff/COMMIT";

// Phase of a quorum certificate (selects the signing domain).
enum class HsPhase : uint8_t { kPrepare, kPreCommit, kCommit };
const char* HsPhaseDomain(HsPhase phase);

struct HsNewViewMsg : SimMessage {
  const char* TraceName() const override { return "hs_new_view"; }
  View view = 0;             // View being entered.
  QuorumCert prepare_qc;     // Sender's highest prepare QC (may be empty at genesis).
  Signature sig;             // Sender authentication.
  size_t WireSize() const override { return 8 + prepare_qc.WireSize() + sig.WireSize(); }
};

struct HsProposeMsg : SimMessage {
  const char* TraceName() const override { return "hs_propose"; }
  BlockPtr block;
  QuorumCert justify;  // The high QC the proposal extends.
  size_t WireSize() const override { return block->WireSize() + justify.WireSize(); }
};

struct HsVoteMsg : SimMessage {
  const char* TraceName() const override { return "hs_vote"; }
  HsPhase phase = HsPhase::kPrepare;
  SignedCert vote;  // ⟨phase-domain, block hash, view⟩.
  size_t WireSize() const override { return 1 + vote.WireSize(); }
};

struct HsQcMsg : SimMessage {
  const char* TraceName() const override { return "hs_qc"; }
  HsPhase phase = HsPhase::kPrepare;
  QuorumCert qc;
  size_t WireSize() const override { return 1 + qc.WireSize(); }
};

class HotStuffReplica : public ReplicaBase {
 public:
  HotStuffReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;
  View current_view() const { return cur_view_; }
  size_t VoteQuorum() const { return 2 * static_cast<size_t>(f()) + 1; }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.view = cur_view_;
    return snap;
  }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;

 private:
  void EnterView(View view);
  void OnNewView(const HsNewViewMsg& msg);
  void TryPropose(View view);
  void OnPropose(NodeId from, const std::shared_ptr<const HsProposeMsg>& msg);
  void OnVote(const HsVoteMsg& msg);
  void OnQc(NodeId from, const std::shared_ptr<const HsQcMsg>& msg);
  void SendVote(HsPhase phase, const Hash256& hash, View view);
  bool SafeToVote(const BlockPtr& block, const QuorumCert& justify) const;

  // Syncs (cur_view_, prepare_qc_, locked_qc_) to the host record store: must precede any
  // message that makes the view entry, QC adoption, or lock observable.
  void PersistState();
  void RestoreDurableState();

  bool initial_launch_;
  View cur_view_ = 0;
  uint32_t consecutive_timeouts_ = 0;
  QuorumCert prepare_qc_;  // Highest prepare QC seen (generic QC in HotStuff terms).
  QuorumCert locked_qc_;   // Lock from the COMMIT phase.

  // Leader collections per view.
  std::map<View, std::vector<HsNewViewMsg>> new_views_;
  std::map<View, Hash256> proposed_hash_;
  std::map<View, std::vector<SignedCert>> votes_[3];  // Indexed by HsPhase.
  std::map<View, uint8_t> phase_done_;

  std::vector<std::pair<NodeId, std::shared_ptr<const HsProposeMsg>>> pending_proposals_;
};

}  // namespace achilles

#endif  // SRC_HOTSTUFF_REPLICA_H_
