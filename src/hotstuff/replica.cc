#include "src/hotstuff/replica.h"

#include <algorithm>

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr View kPruneHorizon = 8;
constexpr const char* kStateKey = "hotstuff-qc";

template <typename MapT>
void PruneBelow(MapT& map, View horizon) {
  while (!map.empty() && map.begin()->first + kPruneHorizon < horizon) {
    map.erase(map.begin());
  }
}

void WriteQc(ByteWriter& w, const QuorumCert& qc) {
  w.Raw(ByteView(qc.hash.data(), qc.hash.size()));
  w.U64(qc.view);
  w.U32(static_cast<uint32_t>(qc.sigs.size()));
  for (const Signature& sig : qc.sigs) {
    w.U32(sig.signer);
    w.Blob(ByteView(sig.blob.data(), sig.blob.size()));
  }
}

bool ReadQc(ByteReader& r, QuorumCert& qc) {
  const auto hash = r.Raw(32);
  const auto view = r.U64();
  const auto count = r.U32();
  if (!hash || !view || !count) {
    return false;
  }
  std::copy(hash->begin(), hash->end(), qc.hash.begin());
  qc.view = *view;
  qc.sigs.clear();
  qc.sigs.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    const auto signer = r.U32();
    auto blob = r.Blob();
    if (!signer || !blob) {
      return false;
    }
    Signature sig;
    sig.signer = *signer;
    sig.blob = std::move(*blob);
    qc.sigs.push_back(std::move(sig));
  }
  return true;
}
}  // namespace

const char* HsPhaseDomain(HsPhase phase) {
  switch (phase) {
    case HsPhase::kPrepare:
      return kHsPrepare;
    case HsPhase::kPreCommit:
      return kHsPreCommit;
    case HsPhase::kCommit:
      return kHsCommit;
  }
  return "?";
}

HotStuffReplica::HotStuffReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx), initial_launch_(initial_launch) {
  // Genesis QC: empty certificate referencing the genesis block.
  prepare_qc_.hash = Block::Genesis()->hash;
  prepare_qc_.view = 0;
  locked_qc_ = prepare_qc_;
  if (!initial_launch_) {
    RestoreStableCheckpoint();
    RestoreDurableState();
  }
}

void HotStuffReplica::RestoreDurableState() {
  const std::optional<Bytes> state = HostRecords().Get(kStateKey);
  if (!state) {
    return;
  }
  ByteReader r(ByteView(state->data(), state->size()));
  const auto view = r.U64();
  QuorumCert prepare_qc;
  QuorumCert locked_qc;
  if (!view || !ReadQc(r, prepare_qc) || !ReadQc(r, locked_qc) || r.remaining() != 0) {
    return;
  }
  cur_view_ = *view;
  prepare_qc_ = std::move(prepare_qc);
  locked_qc_ = std::move(locked_qc);
}

void HotStuffReplica::PersistState() {
  ByteWriter w;
  w.U64(cur_view_);
  WriteQc(w, prepare_qc_);
  WriteQc(w, locked_qc_);
  HostRecords().Put(kStateKey, ByteView(w.bytes().data(), w.bytes().size()));
}

void HotStuffReplica::OnStart() {
  // A rebooted replica may have voted in the restored view, so that view is burned:
  // re-entering view+1 is what makes a second PREPARE vote there impossible. (EnterView
  // would also refuse `cur_view_` because only view 1 may be re-entered.)
  EnterView(initial_launch_ ? 1 : cur_view_ + 1);
}

void HotStuffReplica::EnterView(View view) {
  if (view <= cur_view_ && view != 1) {
    return;
  }
  cur_view_ = view;
  JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  PersistState();  // The view entry must survive a reboot (restored view is burned).
  ArmViewTimer(cur_view_, consecutive_timeouts_);
  auto msg = std::make_shared<HsNewViewMsg>();
  msg->view = view;
  msg->prepare_qc = prepare_qc_;
  ChargeSignPlain();
  const Bytes digest = CertDigest(kHsNewView, prepare_qc_.hash, view);
  msg->sig = platform().suite().Sign(id(), ByteView(digest.data(), digest.size()));
  SendTo(LeaderOf(view), msg);
}

void HotStuffReplica::OnViewTimeout(View view) {
  if (view != cur_view_) {
    return;
  }
  ++consecutive_timeouts_;
  EnterView(cur_view_ + 1);
}

void HotStuffReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (auto nv = std::dynamic_pointer_cast<const HsNewViewMsg>(msg)) {
    OnNewView(*nv);
  } else if (auto propose = std::dynamic_pointer_cast<const HsProposeMsg>(msg)) {
    OnPropose(from, propose);
  } else if (auto vote = std::dynamic_pointer_cast<const HsVoteMsg>(msg)) {
    OnVote(*vote);
  } else if (auto qc = std::dynamic_pointer_cast<const HsQcMsg>(msg)) {
    OnQc(from, qc);
  }
}

void HotStuffReplica::OnNewView(const HsNewViewMsg& msg) {
  if (LeaderOf(msg.view) != id() || msg.view + kPruneHorizon < cur_view_ ||
      proposed_hash_.count(msg.view) > 0) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = CertDigest(kHsNewView, msg.prepare_qc.hash, msg.view);
  if (!platform().suite().Verify(msg.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<HsNewViewMsg>& collected = new_views_[msg.view];
  for (const HsNewViewMsg& existing : collected) {
    if (existing.sig.signer == msg.sig.signer) {
      return;
    }
  }
  collected.push_back(msg);
  TryPropose(msg.view);
}

void HotStuffReplica::TryPropose(View view) {
  auto it = new_views_.find(view);
  if (it == new_views_.end() || it->second.size() < VoteQuorum() || view < cur_view_ ||
      proposed_hash_.count(view) > 0) {
    return;
  }
  // Extend the highest prepare QC among the collected new-views (and our own).
  const QuorumCert* high = &prepare_qc_;
  for (const HsNewViewMsg& nv : it->second) {
    if (nv.prepare_qc.view > high->view) {
      high = &nv.prepare_qc;
    }
  }
  if (!EnsureAncestry(high->hash, LeaderOf(high->view))) {
    return;
  }
  const BlockPtr parent = store_.Get(high->hash);
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  ChargeExecute(batch.size());
  const BlockPtr block = Block::Create(view, parent, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());
  if (view > cur_view_) {
    cur_view_ = view;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  proposed_hash_[view] = block->hash;
  store_.Add(block);
  MarkProposed(block);
  PruneBelow(new_views_, cur_view_);
  PruneBelow(proposed_hash_, cur_view_);
  for (auto& votes : votes_) {
    PruneBelow(votes, cur_view_);
  }
  PruneBelow(phase_done_, cur_view_);

  auto msg = std::make_shared<HsProposeMsg>();
  msg->block = block;
  msg->justify = *high;
  BroadcastToReplicas(msg, /*include_self=*/true);
}

bool HotStuffReplica::SafeToVote(const BlockPtr& block, const QuorumCert& justify) const {
  // HotStuff safety rule: vote iff the block extends the locked block, or the justify QC
  // is newer than the lock (liveness rule).
  if (store_.Extends(block->hash, locked_qc_.hash)) {
    return true;
  }
  return justify.view > locked_qc_.view;
}

void HotStuffReplica::OnPropose(NodeId from, const std::shared_ptr<const HsProposeMsg>& msg) {
  if (msg->block == nullptr || msg->block->view < cur_view_ ||
      LeaderOf(msg->block->view) != from) {
    return;
  }
  // Verify the justify QC (genesis QC is empty and always accepted).
  if (!msg->justify.sigs.empty()) {
    ChargeVerifyBatch(msg->justify.sigs.size());
    if (!msg->justify.Verify(platform().suite(), kHsPrepare, VoteQuorum())) {
      return;
    }
  } else if (msg->justify.hash != Block::Genesis()->hash) {
    return;
  }
  if (msg->block->parent != msg->justify.hash) {
    return;
  }
  if (!AcceptBlock(msg->block)) {
    return;
  }
  if (!EnsureAncestry(msg->block->hash, from)) {
    pending_proposals_.emplace_back(from, msg);
    return;
  }
  if (!SafeToVote(msg->block, msg->justify)) {
    return;
  }
  if (msg->block->view > cur_view_) {
    cur_view_ = msg->block->view;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);
  PersistState();  // The view we PREPARE-vote in hits disk before the vote leaves.
  SendVote(HsPhase::kPrepare, msg->block->hash, msg->block->view);
}

void HotStuffReplica::SendVote(HsPhase phase, const Hash256& hash, View view) {
  auto msg = std::make_shared<HsVoteMsg>();
  msg->phase = phase;
  msg->vote.hash = hash;
  msg->vote.view = view;
  ChargeSignPlain();
  const Bytes digest = msg->vote.Digest(HsPhaseDomain(phase));
  msg->vote.sig = platform().suite().Sign(id(), ByteView(digest.data(), digest.size()));
  SendTo(LeaderOf(view), msg);
}

void HotStuffReplica::OnVote(const HsVoteMsg& msg) {
  const View v = msg.vote.view;
  const auto phase_index = static_cast<size_t>(msg.phase);
  if (LeaderOf(v) != id()) {
    return;
  }
  auto proposed = proposed_hash_.find(v);
  if (proposed == proposed_hash_.end() || msg.vote.hash != proposed->second) {
    return;
  }
  if (phase_done_[v] > phase_index) {
    return;  // This phase's QC already formed.
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.vote.Digest(HsPhaseDomain(msg.phase));
  if (!platform().suite().Verify(msg.vote.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& votes = votes_[phase_index][v];
  for (const SignedCert& existing : votes) {
    if (existing.sig.signer == msg.vote.sig.signer) {
      return;
    }
  }
  votes.push_back(msg.vote);
  CritNote(static_cast<uint32_t>(phase_index), v);
  if (votes.size() < VoteQuorum()) {
    return;
  }
  CritJoin(static_cast<uint32_t>(phase_index), v);
  phase_done_[v] = static_cast<uint8_t>(phase_index + 1);
  auto out = std::make_shared<HsQcMsg>();
  out->phase = msg.phase;
  out->qc.hash = proposed->second;
  out->qc.view = v;
  for (const SignedCert& vote : votes) {
    out->qc.sigs.push_back(vote.sig);
  }
  BroadcastToReplicas(out, /*include_self=*/true);
}

void HotStuffReplica::OnQc(NodeId from, const std::shared_ptr<const HsQcMsg>& msg) {
  const QuorumCert& qc = msg->qc;
  ChargeVerifyBatch(qc.sigs.size());
  if (!qc.Verify(platform().suite(), HsPhaseDomain(msg->phase), VoteQuorum())) {
    return;
  }
  switch (msg->phase) {
    case HsPhase::kPrepare:
      if (qc.view >= prepare_qc_.view) {
        prepare_qc_ = qc;
        PersistState();  // The highest prepare QC must survive a reboot.
      }
      SendVote(HsPhase::kPreCommit, qc.hash, qc.view);
      return;
    case HsPhase::kPreCommit:
      if (qc.view >= locked_qc_.view) {
        locked_qc_ = qc;  // Lock.
        JournalEvent(obs::JournalKind::kLockUpdate, qc.view, JournalHash(qc.hash));
        PersistState();  // The lock hits disk before the COMMIT vote leaves the node.
      }
      SendVote(HsPhase::kCommit, qc.hash, qc.view);
      return;
    case HsPhase::kCommit: {
      const BlockPtr block = store_.Get(qc.hash);
      if (block == nullptr) {
        RequestBlock(from, qc.hash);
        return;
      }
      CommitChain(block, qc.WireSize());
      consecutive_timeouts_ = 0;
      EnterView(qc.view + 1);
      return;
    }
  }
}

void HotStuffReplica::OnBlocksSynced() {
  auto proposals = std::move(pending_proposals_);
  pending_proposals_.clear();
  for (auto& [from, msg] : proposals) {
    OnPropose(from, msg);
  }
  TryPropose(cur_view_);
}

}  // namespace achilles
