#include "src/app/kv_service.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace achilles {
namespace app {

KvService::KvService(std::vector<Host*> replica_hosts, Network* net, CommitTracker* tracker,
                     uint32_t kv_client_host, const KvAppOptions& opts,
                     obs::MetricsRegistry* metrics)
    : hosts_(std::move(replica_hosts)),
      net_(net),
      tracker_(tracker),
      kv_client_host_(kv_client_host),
      opts_(opts),
      per_replica_(hosts_.size()) {
  ACHILLES_CHECK(!hosts_.empty());
  if (metrics != nullptr) {
    reads_total_ = metrics->GetCounter("app.reads");
    reads_lease_ = metrics->GetCounter("app.reads_lease");
    reads_declined_ = metrics->GetCounter("app.reads_declined");
    stale_candidates_ = metrics->GetCounter("app.stale_read_candidates");
    lease_grants_ = metrics->GetCounter("app.lease_grants");
    lease_revokes_ = metrics->GetCounter("app.lease_revokes");
  }
}

void KvService::OnCommit(NodeId replica, const BlockPtr& block, SimTime now) {
  by_height_.emplace(block->height, block);  // First commit wins.
  // Advance the canonical first-commit state as far as the chain allows.
  while (true) {
    auto it = by_height_.find(canonical_.height() + 1);
    if (it == by_height_.end() || !canonical_.CanApply(it->second)) {
      break;
    }
    canonical_.ApplyBlock(it->second);
  }
  CatchUpMirror(replica, now);
}

void KvService::OnProposal(NodeId proposer, const BlockPtr& block) {
  if (proposer >= n() || block == nullptr) {
    return;
  }
  PerReplica& pr = per_replica_[proposer];
  if (block->height <= pr.mirror.height()) {
    return;
  }
  std::vector<uint32_t>* slot = nullptr;
  for (const Transaction& tx : block->txs) {
    KvOpKind kind;
    uint32_t key;
    if (!DecodeKvOp(tx.op, &kind, &key) || kind != KvOpKind::kPut) {
      continue;
    }
    if (slot == nullptr) {
      slot = &pr.pending_put_heights[block->height];
    }
    slot->push_back(key);
    ++pr.pending_put_keys[key];
  }
}

void KvService::PrunePendingPuts(PerReplica& pr) {
  while (!pr.pending_put_heights.empty() &&
         pr.pending_put_heights.begin()->first <= pr.mirror.height()) {
    for (const uint32_t key : pr.pending_put_heights.begin()->second) {
      auto it = pr.pending_put_keys.find(key);
      if (it != pr.pending_put_keys.end() && --it->second == 0) {
        pr.pending_put_keys.erase(it);
      }
    }
    pr.pending_put_heights.erase(pr.pending_put_heights.begin());
  }
}

void KvService::CatchUpMirror(NodeId replica, SimTime now) {
  PerReplica& pr = per_replica_[replica];
  // A checkpoint-adopting replica commits a high block without the intermediate chain; the
  // shared by_height_ map replays the gap in order. A missing height stalls the mirror (its
  // lease state cannot advance, so it simply never serves) until a later commit fills it.
  while (true) {
    auto it = by_height_.find(pr.mirror.height() + 1);
    if (it == by_height_.end() || !pr.mirror.CanApply(it->second)) {
      break;
    }
    const BlockPtr& b = it->second;
    pr.mirror.ApplyBlock(b);
    OnBlockApplied(replica, b, now);
  }
  PrunePendingPuts(pr);
}

void KvService::OnBlockApplied(NodeId replica, const BlockPtr& block, SimTime now) {
  PerReplica& pr = per_replica_[replica];
  const NodeId proposer = tracker_->ProposerOf(block->hash);
  const bool self_led = proposer == replica;

  if (self_led) {
    ++pr.streak;
  } else {
    // Foreign-led block applied: leadership moved, drop any lease immediately.
    RevokeLease(replica, pr, /*journal=*/true);
  }

  // Renewal: a stable leader keeps every peer's promise at least ~L/4 ahead of expiry.
  if (self_led && pr.streak >= opts_.stable_streak) {
    SimTime min_expiry = std::numeric_limits<SimTime>::max();
    for (NodeId j = 0; j < n(); ++j) {
      if (j == replica) {
        continue;
      }
      auto it = pr.ack_expiry.find(j);
      const SimTime expiry = it == pr.ack_expiry.end() ? 0 : it->second;
      min_expiry = std::min(min_expiry, expiry);
    }
    if (min_expiry < now + (3 * opts_.lease_duration) / 4) {
      auto renew = std::make_shared<KvLeaseRenewMsg>();
      renew->holder = replica;
      for (NodeId j = 0; j < n(); ++j) {
        if (j != replica) {
          net_->Send(hosts_[replica]->id(), hosts_[j]->id(), renew);
        }
      }
    }
  }

  // Release the applied-notification to the client, gated by boot silence and by any live
  // promise to a holder other than this block's proposer (the withholding that makes the
  // lease safe). The broken variant skips the promise gate — that is the planted bug.
  SimTime release = std::max(now, pr.boot_silence_until);
  if (!opts_.break_stale_read_lease && pr.promise_to != kNoNode &&
      pr.promise_to != proposer && now < pr.promise_until) {
    release = std::max(release, pr.promise_until);
  }
  auto applied = std::make_shared<KvAppliedMsg>();
  applied->block = block;
  applied->replica = replica;
  applied->proposer = proposer;
  if (release <= now) {
    net_->Send(hosts_[replica]->id(), kv_client_host_, applied);
  } else {
    // The timer dies with the host, so a crashed replica's withheld releases vanish —
    // exactly what a real process restart would do.
    hosts_[replica]->SetTimer(release - now, [this, replica, applied] {
      net_->Send(hosts_[replica]->id(), kv_client_host_, applied);
    });
  }
}

bool KvService::CanServe(const PerReplica& pr, SimTime now) const {
  if (pr.streak < opts_.stable_streak) {
    return false;
  }
  for (NodeId j = 0; j < n(); ++j) {
    if (&per_replica_[j] == &pr) {
      continue;
    }
    auto it = pr.ack_expiry.find(j);
    if (it == pr.ack_expiry.end() || it->second <= now) {
      return false;
    }
  }
  return true;
}

void KvService::RevokeLease(NodeId replica, PerReplica& pr, bool journal) {
  if (pr.streak == 0 && pr.ack_expiry.empty()) {
    return;
  }
  if (journal) {
    hosts_[replica]->JournalEvent(obs::JournalKind::kLeaseRevoke);
    if (lease_revokes_ != nullptr) {
      lease_revokes_->Inc();
    }
  }
  pr.streak = 0;
  pr.ack_expiry.clear();
}

bool KvService::OnAppMessage(NodeId replica, uint32_t from_host, const MessageRef& msg) {
  if (auto req = std::dynamic_pointer_cast<const KvReadRequestMsg>(msg)) {
    HandleReadRequest(replica, from_host, *req);
    return true;
  }
  if (auto renew = std::dynamic_pointer_cast<const KvLeaseRenewMsg>(msg)) {
    HandleLeaseRenew(replica, *renew);
    return true;
  }
  if (auto ack = std::dynamic_pointer_cast<const KvLeaseAckMsg>(msg)) {
    HandleLeaseAck(replica, *ack);
    return true;
  }
  return false;
}

void KvService::HandleReadRequest(NodeId replica, uint32_t from_host,
                                  const KvReadRequestMsg& req) {
  Host* host = hosts_[replica];
  host->ChargeCpu(Us(1));  // Local read execution.
  PerReplica& pr = per_replica_[replica];
  const SimTime now = host->LocalNow();
  if (reads_total_ != nullptr) {
    reads_total_->Inc();
  }
  auto reply = std::make_shared<KvReadReplyMsg>();
  reply->op_id = req.op_id;
  reply->key = req.key;
  reply->server = replica;
  // A key with one of this replica's own PUTs still in flight is barred from the fast
  // path: the proposal may commit under a new leader (and complete at clients through the
  // grantors' proposer exemption) without this mirror ever applying it.
  if (CanServe(pr, now) && pr.pending_put_keys.find(req.key) == pr.pending_put_keys.end()) {
    reply->served = true;
    reply->cell = pr.mirror.Read(req.key);
    ++lease_reads_served_;
    if (reads_lease_ != nullptr) {
      reads_lease_->Inc();
    }
    host->JournalEvent(obs::JournalKind::kLeaseServe, req.key, reply->cell.version);
    // Near-miss accounting: the serve returned a version already superseded in the agreed
    // log. Not necessarily a violation (the newer write may not be client-complete yet) —
    // the linearizability checker decides — but the count sizes the exposure.
    if (canonical_.Read(req.key).version > reply->cell.version) {
      ++stale_read_candidates_;
      if (stale_candidates_ != nullptr) {
        stale_candidates_->Inc();
      }
    }
  } else {
    reply->served = false;
    if (reads_declined_ != nullptr) {
      reads_declined_->Inc();
    }
  }
  net_->Send(host->id(), from_host, reply);
}

void KvService::HandleLeaseRenew(NodeId replica, const KvLeaseRenewMsg& msg) {
  const NodeId holder = msg.holder;
  if (holder >= n() || holder == replica) {
    return;
  }
  Host* host = hosts_[replica];
  PerReplica& pr = per_replica_[replica];
  const SimTime now = host->LocalNow();
  // Single-live-grant: refuse while a different holder's promise is still running.
  if (pr.promise_to != kNoNode && pr.promise_to != holder && now < pr.promise_until) {
    return;
  }
  pr.promise_to = holder;
  pr.promise_until = now + opts_.lease_duration;
  // Granting is incompatible with serving: someone else is the stable leader now.
  RevokeLease(replica, pr, /*journal=*/true);
  host->JournalEvent(obs::JournalKind::kLeaseGrant, holder,
                     static_cast<uint64_t>(pr.promise_until));
  if (lease_grants_ != nullptr) {
    lease_grants_->Inc();
  }
  auto ack = std::make_shared<KvLeaseAckMsg>();
  ack->grantor = replica;
  ack->expiry = pr.promise_until;
  net_->Send(host->id(), hosts_[holder]->id(), ack);
}

void KvService::HandleLeaseAck(NodeId replica, const KvLeaseAckMsg& msg) {
  if (msg.grantor >= n() || msg.grantor == replica) {
    return;
  }
  PerReplica& pr = per_replica_[replica];
  SimTime& slot = pr.ack_expiry[msg.grantor];
  slot = std::max(slot, msg.expiry);
}

void KvService::InstallMirror(NodeId replica, const KvState& state, SimTime now) {
  PerReplica& pr = per_replica_[replica];
  if (state.height() <= pr.mirror.height()) {
    return;  // The mirror already covers the snapshot prefix.
  }
  // A snapshot jump invalidates any self-led streak; serving must re-stabilize.
  RevokeLease(replica, pr, /*journal=*/true);
  pr.mirror = state;
  // Roll forward from the shared agreed log past the snapshot. The skipped blocks release
  // no KvAppliedMsg from this replica — clients complete via the proposer / f+1 rule.
  CatchUpMirror(replica, now);
}

void KvService::PruneBelow(Height keep_from) {
  // Never prune what the slowest mirror still needs to replay.
  for (const PerReplica& pr : per_replica_) {
    keep_from = std::min(keep_from, pr.mirror.height() + 1);
  }
  by_height_.erase(by_height_.begin(), by_height_.lower_bound(keep_from));
}

void KvService::OnReplicaCrash(NodeId replica) {
  PerReplica& pr = per_replica_[replica];
  // Everything lease-related is volatile. The mirror survives: it is a deterministic
  // function of the durable log prefix, re-derivable on reboot.
  RevokeLease(replica, pr, /*journal=*/false);
  pr.promise_to = kNoNode;
  pr.promise_until = 0;
  // In-flight proposals died with the incarnation. Forgetting them is safe: reboot
  // silence outlasts any promise the crashed incarnation could have been granted, and
  // serving needs a freshly rebuilt streak anyway.
  pr.pending_put_heights.clear();
  pr.pending_put_keys.clear();
}

void KvService::OnReplicaReboot(NodeId replica, SimTime bind_time) {
  // The crashed incarnation may have promised a lease that the crash forgot. Stay silent
  // toward clients for a full lease duration — an upper bound on any pre-crash promise.
  per_replica_[replica].boot_silence_until = bind_time + opts_.lease_duration;
}

}  // namespace app
}  // namespace achilles
