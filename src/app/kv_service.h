// Replicated KV application layer: executes the agreed log behind every protocol
// (order-then-execute off CommitTracker) and serves leader read-leases as a read fast path.
//
// One KvService instance serves a whole cluster. It lives outside the simulated machines —
// like CommitTracker — but every effect it produces (messages, timers, journal events, CPU
// charges) happens inside some replica host's handler context, so virtual-time behavior is
// exactly as if each replica ran its own app instance. Per-replica state is keyed by
// replica id.
//
// Read-lease protocol (quorum-promise leases with client-response withholding):
//  - A replica that has applied `stable_streak` consecutive self-proposed blocks asks every
//    peer for a lease promise (KvLeaseRenewMsg). A grantor with no conflicting live promise
//    answers with an absolute expiry = its local now + lease_duration (KvLeaseAckMsg) and
//    promises: until that expiry it will NOT release client completions (KvAppliedMsg) for
//    blocks proposed by anyone other than the holder. Withholding — not refusing to vote —
//    keeps the consensus layer untouched; writes still commit, clients just learn of them
//    only after every outstanding promise has lapsed.
//  - The holder serves lease reads from its own mirror only while it holds live promises
//    from ALL peers (each judged against the grantor's own clock, and acks expire exactly
//    at the grantor's promise_until, so clock comparison never crosses hosts unsafely) and
//    its self-led streak is intact. Applying a foreign-led block revokes: streak and acks
//    reset (journaled as kLeaseRevoke).
//  - Crash wipes a grantor's promise (it is volatile). The reboot path compensates with
//    boot silence: a rebooted replica delays all KvAppliedMsg releases until
//    bind_time + lease_duration, an upper bound on any promise it could have made before
//    crashing (promise_until <= crash_time + L <= bind_time + L).
//  - The client-side completion rule (first applied-reply from the block's proposer, or
//    f+1 distinct replicas — src/client/kv_client.h) means a write is client-visible only
//    once the proposer or a quorum has passed the withholding gate.
//
// The deliberately-broken variant (--broken stale-read-lease): grantors skip the
// withholding clause, so after a leader change the new leader's writes complete at clients
// immediately while the old holder — if it has not yet applied a foreign-led block, e.g.
// because it is partitioned from its peers but not from clients — keeps serving its frozen
// mirror until its acks expire. That is precisely a client-observed stale read, and the
// linearizability oracle must flag it.
#ifndef SRC_APP_KV_SERVICE_H_
#define SRC_APP_KV_SERVICE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "src/app/kv.h"
#include "src/consensus/replica_base.h"
#include "src/sim/host.h"

namespace achilles {
namespace app {

// --- Application wire messages (client <-> replica, replica <-> replica) ---

// Client -> replica: attempt a lease-served read.
struct KvReadRequestMsg : SimMessage {
  const char* TraceName() const override { return "kv_read_req"; }
  uint64_t op_id = 0;
  uint32_t key = 0;
  size_t WireSize() const override { return 20; }
};

// Replica -> client: lease read outcome. served == false means "no live lease here, try
// elsewhere" (the client rotates its read target and eventually falls back to an ordered
// GET through the log).
struct KvReadReplyMsg : SimMessage {
  const char* TraceName() const override { return "kv_read_reply"; }
  uint64_t op_id = 0;
  bool served = false;
  uint32_t key = 0;
  KvCell cell;
  NodeId server = kNoNode;
  size_t WireSize() const override { return 32; }
};

// Replica -> client: this replica applied `block` (proposed by `proposer`). Release of this
// message is where lease withholding and boot silence bite.
struct KvAppliedMsg : SimMessage {
  const char* TraceName() const override { return "kv_applied"; }
  BlockPtr block;
  NodeId replica = kNoNode;
  NodeId proposer = kNoNode;
  size_t WireSize() const override { return 16 + (block ? block->WireSize() : 0); }
};

// Holder -> peer: ask for / refresh a lease promise.
struct KvLeaseRenewMsg : SimMessage {
  const char* TraceName() const override { return "kv_lease_renew"; }
  NodeId holder = kNoNode;
  size_t WireSize() const override { return 12; }
};

// Peer -> holder: promise granted until `expiry` (grantor-clock absolute time).
struct KvLeaseAckMsg : SimMessage {
  const char* TraceName() const override { return "kv_lease_ack"; }
  NodeId grantor = kNoNode;
  SimTime expiry = 0;
  size_t WireSize() const override { return 20; }
};

struct KvAppOptions {
  SimDuration lease_duration = Ms(400);  // L: promise lifetime.
  uint32_t stable_streak = 3;            // K: self-led blocks applied before serving.
  uint32_t payload_size = 64;            // Bytes per KV transaction payload.
  // Oracle self-test ONLY: grantors stop withholding foreign-led completions, making the
  // stale-read window client-observable (see file header).
  bool break_stale_read_lease = false;
};

class KvService : public AppMessageSink {
 public:
  KvService(std::vector<Host*> replica_hosts, Network* net, CommitTracker* tracker,
            uint32_t kv_client_host, const KvAppOptions& opts,
            obs::MetricsRegistry* metrics);

  // Wire this into the tracker with AddCommitListener. Runs inside the committing
  // replica's handler context.
  void OnCommit(NodeId replica, const BlockPtr& block, SimTime now);

  // Wire this into the tracker with AddProposeListener. Records the proposer's own
  // in-flight PUT keys: a leaseholder must not lease-serve a key it has proposed a write
  // for until its mirror has passed the proposal height. The grantor-side withholding
  // exempts holder-proposed blocks, so a partitioned holder whose proposal commits under
  // a new leader would otherwise serve the pre-write value after the write completed.
  void OnProposal(NodeId proposer, const BlockPtr& block);

  // AppMessageSink: consumes Kv* traffic arriving at replica hosts.
  bool OnAppMessage(NodeId replica, uint32_t from_host, const MessageRef& msg) override;

  // Lifecycle notifications from the Cluster. Lease state is volatile (lost on crash);
  // the mirror persists (it is a pure function of the durable log).
  void OnReplicaCrash(NodeId replica);
  void OnReplicaReboot(NodeId replica, SimTime bind_time);

  // Snapshot state transfer (src/checkpoint): replaces the replica's mirror with the
  // transferred state when it is ahead, revoking any lease, then rolls forward from the
  // shared log. No-op when the mirror already covers the snapshot.
  void InstallMirror(NodeId replica, const KvState& state, SimTime now);
  // Log compaction: drops agreed-log entries below `keep_from` (clamped so the slowest
  // mirror can still replay). Called by the Cluster when a checkpoint becomes stable.
  void PruneBelow(Height keep_from);
  size_t agreed_log_entries() const { return by_height_.size(); }

  // First-commit materialized state: checker-side ground truth, zero simulated cost.
  const KvState& canonical() const { return canonical_; }
  const KvState& mirror(NodeId replica) const { return per_replica_[replica].mirror; }
  uint64_t lease_reads_served() const { return lease_reads_served_; }
  uint64_t stale_read_candidates() const { return stale_read_candidates_; }

 private:
  struct PerReplica {
    KvState mirror;
    // Holder (grantee) side.
    uint32_t streak = 0;                              // Consecutive self-led blocks applied.
    std::unordered_map<NodeId, SimTime> ack_expiry;   // Live promises held, per grantor.
    // Grantor side.
    NodeId promise_to = kNoNode;
    SimTime promise_until = 0;
    // Reboot silence (applies to KvAppliedMsg releases only).
    SimTime boot_silence_until = 0;
    // Self-proposed PUT keys not yet covered by the mirror, by proposal height. A key with
    // a live entry is barred from the lease fast path (the ordered path stays available).
    std::map<Height, std::vector<uint32_t>> pending_put_heights;
    std::unordered_map<uint32_t, uint32_t> pending_put_keys;  // key -> live proposal count
  };

  uint32_t n() const { return static_cast<uint32_t>(hosts_.size()); }
  bool CanServe(const PerReplica& pr, SimTime now) const;
  // Drops pending self-proposed PUT entries at or below the mirror height.
  static void PrunePendingPuts(PerReplica& pr);
  // Drops replica's holder-side lease state; journals kLeaseRevoke if it had any.
  void RevokeLease(NodeId replica, PerReplica& pr, bool journal);
  // Applies every chain-ready block from by_height_ to replica's mirror, doing lease
  // accounting and releasing KvAppliedMsg per block.
  void CatchUpMirror(NodeId replica, SimTime now);
  void OnBlockApplied(NodeId replica, const BlockPtr& block, SimTime now);
  void HandleReadRequest(NodeId replica, uint32_t from_host, const KvReadRequestMsg& req);
  void HandleLeaseRenew(NodeId replica, const KvLeaseRenewMsg& msg);
  void HandleLeaseAck(NodeId replica, const KvLeaseAckMsg& msg);

  std::vector<Host*> hosts_;  // hosts_[i] = replica i's host.
  Network* net_;
  CommitTracker* tracker_;
  uint32_t kv_client_host_;
  KvAppOptions opts_;

  // Agreed log by height, first commit wins (the safety oracle separately guarantees no
  // correct replica ever disagrees). Lets checkpoint-adopting mirrors catch up in order.
  std::map<Height, BlockPtr> by_height_;
  KvState canonical_;
  mutable std::vector<PerReplica> per_replica_;

  uint64_t lease_reads_served_ = 0;
  uint64_t stale_read_candidates_ = 0;
  obs::Counter* reads_total_ = nullptr;
  obs::Counter* reads_lease_ = nullptr;
  obs::Counter* reads_declined_ = nullptr;
  obs::Counter* stale_candidates_ = nullptr;
  obs::Counter* lease_grants_ = nullptr;
  obs::Counter* lease_revokes_ = nullptr;
};

}  // namespace app
}  // namespace achilles

#endif  // SRC_APP_KV_SERVICE_H_
