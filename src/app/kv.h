// Deterministic versioned key-value state machine executed behind every protocol, plus the
// client-observed operation history it is judged by.
//
// Semantics: each key holds one cell (value, version). A PUT installs value = the writing
// transaction's id (globally unique — (client << 32) | seq — which makes lost updates
// unambiguous in a history) and bumps the key's version by one. A GET reads the cell at the
// point the transaction executes in the agreed log (version 0 = key never written). The op
// word rides in Transaction::op and is covered by the tx root, so block hashes and exec
// digests commit to application behavior, not just payload sizes.
//
// Exactly-once: the same transaction can legitimately appear in two committed blocks (a new
// leader re-proposes a client request it had pooled before seeing the old leader's commit).
// KvState deduplicates by tx id — re-execution is a no-op — so every mirror of the same log
// prefix holds bit-identical cells. This is the standard SMR client-request dedup, done at
// the application layer.
//
// History: clients record one KvOpRecord per invocation with virtual-time invoke/response
// intervals; the Wing–Gong checker (src/chaos/linearizability.h) decides whether a witness
// linearization exists. The text rendering is deterministic, so its SHA-256 doubles as a
// replay-stability fingerprint alongside the journal digest.
#ifndef SRC_APP_KV_H_
#define SRC_APP_KV_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/consensus/block.h"
#include "src/consensus/types.h"

namespace achilles {
namespace app {

enum class KvOpKind : uint8_t {
  kPut = 1,  // Install (value = tx id, version + 1) at the key.
  kGet = 2,  // Ordered read through the log (the lease fast path bypasses the log).
};

// Transaction::op encoding: kind in the top 2 bits, key in the low 32. Zero (the default)
// is "no state-machine effect" — the background load generator's transactions.
inline uint64_t EncodeKvOp(KvOpKind kind, uint32_t key) {
  return (static_cast<uint64_t>(kind) << 62) | key;
}
// Returns false for op == 0 or an unknown kind; such transactions are pure payload.
bool DecodeKvOp(uint64_t op, KvOpKind* kind, uint32_t* key);

struct KvCell {
  uint64_t value = 0;    // Id of the writing transaction; 0 = never written.
  uint64_t version = 0;  // Per-key write count; 0 = never written.
};

// One replica's (or the client's) materialized view of the agreed log. Blocks apply in
// chain order only; CanApply gates each step on (height + 1, parent hash), so a mirror fed
// out-of-order blocks simply waits.
class KvState {
 public:
  KvState();

  bool CanApply(const BlockPtr& block) const;
  // Invoked for every transaction newly applied by ApplyBlock (deduplicated replays are
  // skipped). `cell` is the key's content after the op — for a GET, what the read observed.
  using ApplyCallback =
      std::function<void(const Transaction& tx, KvOpKind kind, uint32_t key, const KvCell& cell)>;
  // Applies `block` (must satisfy CanApply). The callback may be null.
  void ApplyBlock(const BlockPtr& block, const ApplyCallback& cb = nullptr);

  // Cell content at `key`; a zero cell for absent keys.
  KvCell Read(uint32_t key) const;

  Height height() const { return height_; }
  const Hash256& head() const { return head_; }
  size_t num_keys() const { return cells_.size(); }

 private:
  std::unordered_map<uint32_t, KvCell> cells_;
  std::unordered_set<uint64_t> applied_txs_;
  Height height_ = 0;
  Hash256 head_;
};

// One client-observed operation. `op_id` doubles as the transaction id for ordered ops
// (PUTs and GET fallbacks); lease-served reads never enter the log but keep the id unique.
struct KvOpRecord {
  uint64_t op_id = 0;
  uint32_t client = 0;          // Logical closed-loop session id.
  KvOpKind kind = KvOpKind::kGet;
  uint32_t key = 0;
  uint64_t value = 0;           // PUT: value written. GET: value returned.
  uint64_t version = 0;         // PUT: version created. GET: version observed.
  SimTime invoke = 0;
  SimTime response = -1;        // -1 = still pending when the run's horizon was reached.
  bool lease_read = false;      // Served by the leader read-lease fast path.
  NodeId server = kNoNode;      // Serving replica (lease read) / block proposer (ordered).

  bool complete() const { return response >= 0; }
  std::string ToLine() const;
};

struct KvHistory {
  std::vector<KvOpRecord> ops;

  // Deterministic text dump (one line per op, recording order) and its SHA-256 hex — the
  // app-level replay fingerprint.
  std::string ToText() const;
  std::string DigestHex() const;
};

}  // namespace app
}  // namespace achilles

#endif  // SRC_APP_KV_H_
