#include "src/app/kv.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace achilles {
namespace app {

bool DecodeKvOp(uint64_t op, KvOpKind* kind, uint32_t* key) {
  const uint64_t k = op >> 62;
  if (k != static_cast<uint64_t>(KvOpKind::kPut) && k != static_cast<uint64_t>(KvOpKind::kGet)) {
    return false;
  }
  *kind = static_cast<KvOpKind>(k);
  *key = static_cast<uint32_t>(op & 0xffffffffu);
  return true;
}

KvState::KvState() : head_(Block::Genesis()->hash) {}

bool KvState::CanApply(const BlockPtr& block) const {
  return block != nullptr && block->height == height_ + 1 && block->parent == head_;
}

void KvState::ApplyBlock(const BlockPtr& block, const ApplyCallback& cb) {
  ACHILLES_CHECK(CanApply(block));
  for (const Transaction& tx : block->txs) {
    KvOpKind kind;
    uint32_t key;
    if (!DecodeKvOp(tx.op, &kind, &key)) {
      continue;  // Background-load transaction: payload only.
    }
    if (!applied_txs_.insert(tx.id).second) {
      continue;  // Re-proposed client request; already executed in an earlier block.
    }
    if (kind == KvOpKind::kPut) {
      KvCell& cell = cells_[key];
      cell.value = tx.id;
      ++cell.version;
      if (cb) {
        cb(tx, kind, key, cell);
      }
    } else {
      if (cb) {
        cb(tx, kind, key, Read(key));
      }
    }
  }
  height_ = block->height;
  head_ = block->hash;
}

KvCell KvState::Read(uint32_t key) const {
  auto it = cells_.find(key);
  return it == cells_.end() ? KvCell{} : it->second;
}

std::string KvOpRecord::ToLine() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "op=%016llx c%u %s k=%u v=%llu ver=%llu inv=%lld resp=%lld%s srv=%d",
                static_cast<unsigned long long>(op_id), client,
                kind == KvOpKind::kPut ? "put" : "get", key,
                static_cast<unsigned long long>(value),
                static_cast<unsigned long long>(version), static_cast<long long>(invoke),
                static_cast<long long>(response), lease_read ? " lease" : "",
                server == kNoNode ? -1 : static_cast<int>(server));
  return std::string(buf);
}

std::string KvHistory::ToText() const {
  std::string out = "kv-history ops=" + std::to_string(ops.size()) + "\n";
  for (const KvOpRecord& op : ops) {
    out += op.ToLine();
    out += '\n';
  }
  return out;
}

std::string KvHistory::DigestHex() const {
  const std::string text = ToText();
  const Hash256 digest =
      Sha256Digest(ByteView(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
  return HashToHex(digest);
}

}  // namespace app
}  // namespace achilles
