// The Achilles replica: one-phase normal case with chained commit rules (Algorithm 1) and
// the rollback-resilient recovery driver (Algorithm 3). Trusted decisions live in
// AchillesChecker; this class is the untrusted driver around it.
#ifndef SRC_ACHILLES_REPLICA_H_
#define SRC_ACHILLES_REPLICA_H_

#include <map>
#include <vector>

#include "src/achilles/checker.h"
#include "src/achilles/messages.h"
#include "src/consensus/replica_base.h"

namespace achilles {

class AchillesReplica : public ReplicaBase {
 public:
  // `initial_launch` must be true only for the genesis incarnation of the node; reboots
  // construct with false, which starts the replica in recovery.
  AchillesReplica(const ReplicaContext& ctx, bool initial_launch);

  void OnStart() override;

  // Introspection (tests/harness).
  bool recovering() const { return checker_.recovering(); }
  View current_view() const { return cur_view_; }
  const AchillesChecker& checker() const { return checker_; }
  SimTime recovery_completed_at() const { return recovery_completed_at_; }
  // Nonce carried by the replies the last completed recovery actually consumed (the
  // chaos freshness oracle compares it against the final TeeRequest nonce on the wire).
  uint64_t recovery_completed_nonce() const { return recovery_completed_nonce_; }

  InvariantSnapshot Invariants() const override {
    InvariantSnapshot snap = ReplicaBase::Invariants();
    snap.view = checker_.vi();
    snap.recovering = checker_.recovering();
    snap.trusted_version = checker_.version();  // 0 under --defense local.
    return snap;
  }

 protected:
  void HandleMessage(NodeId from, const MessageRef& msg) override;
  void OnViewTimeout(View view) override;
  void OnBlocksSynced() override;

 private:
  struct StoredBlock {
    BlockPtr block;
    SignedCert block_cert;
    QuorumCert commit_cert;
  };

  void OnPropose(NodeId from, const std::shared_ptr<const AchProposeMsg>& msg);
  void OnVote(const AchVoteMsg& msg);
  void OnDecide(NodeId from, const std::shared_ptr<const AchDecideMsg>& msg);
  void OnNewView(const AchNewViewMsg& msg);
  void OnRecoveryRequest(NodeId from, const AchRecoveryRequestMsg& msg);
  void OnRecoveryReply(NodeId from, const AchRecoveryReplyMsg& msg);

  // Proposal paths. `w` is the view to propose in.
  void TryProposeFromCommit(View w);
  void TryProposeFromViewCerts(View w);
  void BuildAndBroadcastProposal(View w, const BlockPtr& parent,
                                 const AccumulatorCert* acc, const QuorumCert* commit_cert);

  // View transitions.
  void AdvanceViaTeeView(View target);
  void EnterViewAfterCommit(View new_view, const std::shared_ptr<const AchDecideMsg>& decide);

  // Recovery driver.
  void StartRecoveryRound();
  void TryFinishRecovery();

  AchillesChecker checker_;
  View cur_view_ = 0;
  uint32_t consecutive_timeouts_ = 0;
  StoredBlock preb_;  // Latest stored block from a leader (Algorithm 1 line 3).
  StoredBlock latest_committed_;  // Latest block committed with its certificate.

  // Leader-side collections.
  std::map<View, std::vector<SignedCert>> store_votes_;
  std::map<View, std::vector<SignedCert>> view_certs_;
  std::map<View, Hash256> proposed_hash_;    // Blocks this node proposed per view.
  std::map<View, QuorumCert> commit_certs_;  // Justifications: cert of view v enables v+1.
  View highest_decided_ = 0;                 // Highest view whose decide we broadcast.

  // Stashed messages waiting for ancestor synchronization.
  std::vector<std::pair<NodeId, std::shared_ptr<const AchProposeMsg>>> pending_proposals_;
  std::vector<std::pair<NodeId, std::shared_ptr<const AchDecideMsg>>> pending_decides_;

  // Recovery state (untrusted side).
  std::vector<SignedCert> recovery_replies_;
  struct RecoveredCerts {
    SignedCert block_cert;
    QuorumCert commit_cert;
  };
  std::unordered_map<Hash256, RecoveredCerts, Hash256Hasher> recovered_certs_;
  StoredBlock best_recovery_checkpoint_;   // Highest certified committed block seen.
  std::map<NodeId, NodeId> reply_source_;  // Reply signer -> host that sent it (for sync).
  uint64_t last_request_nonce_ = 0;        // Pre-filter for superseded reply rounds.
  SimTime recovery_completed_at_ = -1;
  uint64_t recovery_completed_nonce_ = 0;
};

}  // namespace achilles

#endif  // SRC_ACHILLES_REPLICA_H_
