#include "src/achilles/checker.h"

#include <algorithm>

#include "src/common/serde.h"

namespace achilles {

namespace {
constexpr const char* kSealSlot = "achilles-checker";
}

std::string AchRpyDomain(NodeId requester) {
  return std::string("achilles/RPY/") + std::to_string(requester);
}

AchillesChecker::AchillesChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f,
                                 bool initial_launch, bool break_nonce_check)
    : enclave_(enclave),
      n_(n),
      f_(f),
      recovering_(!initial_launch),
      break_nonce_check_(break_nonce_check) {
  preph_ = Block::Genesis()->hash;  // (prepv, preph) = (0, H(G)), Algorithm 2 line 3.
  if (!initial_launch &&
      enclave_->defense().caps().kind != persist::DefenseKind::kLocal) {
    // Racing Achilles against a storage-level defense: with a quorum backend the checker
    // state is persisted like the counter-based checkers', so on reboot we first try a
    // storage restore. A fresh record skips Algorithm 3 entirely (the backend IS the
    // rollback defense); a detected rollback falls back to network recovery, carrying the
    // version floor forward so the chaos version-monotonic oracle stays sound.
    enclave_->ChargeEcall();
    persist::OpenResult opened = enclave_->defense().Open(kSealSlot, /*verify=*/true);
    switch (opened.status) {
      case persist::OpenStatus::kFresh: {
        if (!opened.record) {
          break;
        }
        ByteReader r(ByteView(opened.record->data(), opened.record->size()));
        const auto vi = r.U64();
        const auto flag = r.U8();
        const auto prepv = r.U64();
        const auto preph = r.Raw(32);
        if (!vi || !flag || !prepv || !preph || r.remaining() != 0) {
          break;  // Forged/garbled record: stay recovering, Algorithm 3 takes over.
        }
        vi_ = *vi;
        flag_ = (*flag & 1) != 0;
        prepv_ = *prepv;
        std::copy(preph->begin(), preph->end(), preph_.begin());
        version_ = opened.version;
        recovering_ = false;
        break;
      }
      case persist::OpenStatus::kRolledBack:
        enclave_->platform().host().JournalEvent(obs::JournalKind::kRollbackReject,
                                                 opened.version, opened.expected_version,
                                                 kSealSlot);
        version_ = std::max(opened.version, opened.expected_version);
        break;  // Stale storage: recover over the network (Algorithm 3).
      case persist::OpenStatus::kEmpty:
        break;  // Nothing persisted yet: recover over the network.
    }
  }
}

void AchillesChecker::RecordStateUpdate() {
  // Same snapshot shape the counter-based checkers seal. Under the local backend it goes
  // to an explicitly volatile store — the durability class *is* the design statement (see
  // persist.h): Achilles persists nothing and relies on Algorithm 3 recovery. Under a
  // quorum defense (--defense rollbaccine/healer) the snapshot rides the backend instead,
  // racing storage-level rollback defenses against the paper's network recovery.
  ByteWriter w;
  w.U64(vi_);
  w.U8(static_cast<uint8_t>(flag_ ? 1 : 0));
  w.U64(prepv_);
  w.Raw(ByteView(preph_.data(), preph_.size()));
  if (enclave_->defense().caps().kind != persist::DefenseKind::kLocal) {
    version_ = enclave_->defense().Persist(kSealSlot,
                                           ByteView(w.bytes().data(), w.bytes().size()));
  } else {
    state_store_.Put(kSealSlot, ByteView(w.bytes().data(), w.bytes().size()));
  }
  ++state_updates_;
}

SignedCert AchillesChecker::MakeCert(const char* domain, const Hash256& hash, View view,
                                     uint64_t aux, uint64_t aux2) {
  SignedCert cert;
  cert.hash = hash;
  cert.view = view;
  cert.aux = aux;
  cert.aux2 = aux2;
  enclave_->ChargeSign();
  const Bytes digest = cert.Digest(domain);
  cert.sig = enclave_->Sign(ByteView(digest.data(), digest.size()));
  return cert;
}

std::optional<SignedCert> AchillesChecker::TeePrepare(const Block& b,
                                                      const AccumulatorCert& acc) {
  enclave_->ChargeEcall();
  if (recovering_ || flag_) {
    return std::nullopt;
  }
  // The accumulator must target the current view and must be ours (self-signed by this
  // enclave's key — checker and accumulator share the TEE).
  if (acc.current_view != vi_ || acc.sig.signer != enclave_->platform().node_id()) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes acc_digest = acc.Digest(kAchAcc);
  if (!enclave_->Verify(acc.sig, ByteView(acc_digest.data(), acc_digest.size()))) {
    return std::nullopt;
  }
  if (b.parent != acc.hash || b.view != vi_) {
    return std::nullopt;
  }
  flag_ = true;
  RecordStateUpdate();
  return MakeCert(kAchProp, b.hash, vi_);
}

std::optional<SignedCert> AchillesChecker::TeePrepare(const Block& b,
                                                      const QuorumCert& commit_cert) {
  enclave_->ChargeEcall();
  if (recovering_) {
    return std::nullopt;
  }
  // NEW-VIEW optimization: a commitment certificate for view v lets the leader of view v+1
  // propose immediately. The certificate's view must not be behind the trusted view.
  const View new_view = commit_cert.view + 1;
  if (new_view < vi_ || (new_view == vi_ && flag_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(commit_cert.sigs.size());
  if (!commit_cert.Verify(enclave_->platform().suite(), kAchCommit,
                          static_cast<size_t>(f_) + 1)) {
    return std::nullopt;
  }
  if (b.parent != commit_cert.hash || b.view != new_view) {
    return std::nullopt;
  }
  vi_ = new_view;
  flag_ = true;
  RecordStateUpdate();
  return MakeCert(kAchProp, b.hash, vi_);
}

std::optional<SignedCert> AchillesChecker::TeeStore(const SignedCert& block_cert) {
  enclave_->ChargeEcall();
  if (recovering_) {
    return std::nullopt;
  }
  const View v = block_cert.view;
  if (v < vi_) {
    return std::nullopt;
  }
  // Must be signed by the leader of its view.
  if (block_cert.sig.signer != LeaderOfView(v, n_)) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = block_cert.Digest(kAchProp);
  if (!enclave_->Verify(block_cert.sig, ByteView(digest.data(), digest.size()))) {
    return std::nullopt;
  }
  // Record the latest stored block; when advancing to a later view, the proposal flag
  // resets (a new leader may propose there). Staying in the same view keeps the flag so a
  // leader cannot propose, store its own block, and propose again.
  prepv_ = v;
  preph_ = block_cert.hash;
  if (v > vi_) {
    vi_ = v;
    flag_ = false;
  }
  RecordStateUpdate();
  return MakeCert(kAchCommit, block_cert.hash, v);
}

std::optional<AccumulatorCert> AchillesChecker::TeeAccum(
    const std::vector<SignedCert>& view_certs) {
  enclave_->ChargeEcall();
  if (recovering_ || view_certs.size() < static_cast<size_t>(f_) + 1) {
    return std::nullopt;
  }
  enclave_->ChargeVerifyBatch(view_certs.size());
  std::vector<NodeId> ids;
  const SignedCert* best = nullptr;
  for (const SignedCert& cert : view_certs) {
    if (cert.aux != vi_) {
      return std::nullopt;  // Every certificate must be for the current view.
    }
    const Bytes digest = cert.Digest(kAchNewView);
    if (!enclave_->Verify(cert.sig, ByteView(digest.data(), digest.size()))) {
      return std::nullopt;
    }
    for (NodeId seen : ids) {
      if (seen == cert.sig.signer) {
        return std::nullopt;  // Distinct signers required.
      }
    }
    ids.push_back(cert.sig.signer);
    if (best == nullptr || cert.view > best->view) {
      best = &cert;
    }
  }
  AccumulatorCert acc;
  acc.hash = best->hash;
  acc.block_view = best->view;
  acc.current_view = vi_;
  acc.ids = std::move(ids);
  enclave_->ChargeSign();
  const Bytes digest = acc.Digest(kAchAcc);
  acc.sig = enclave_->Sign(ByteView(digest.data(), digest.size()));
  return acc;
}

std::optional<SignedCert> AchillesChecker::TeeView(View target) {
  enclave_->ChargeEcall();
  if (recovering_ || target <= vi_) {
    return std::nullopt;
  }
  vi_ = target;
  flag_ = false;
  RecordStateUpdate();
  return MakeCert(kAchNewView, preph_, prepv_, /*aux=*/target);
}

std::optional<SignedCert> AchillesChecker::TeeRequest() {
  enclave_->ChargeEcall();
  if (!recovering_) {
    return std::nullopt;
  }
  expected_nonce_ = enclave_->FreshNonce();
  nonce_armed_ = true;
  return MakeCert(kAchReq, ZeroHash(), 0, /*aux=*/expected_nonce_);
}

std::optional<SignedCert> AchillesChecker::TeeReply(const SignedCert& request,
                                                    NodeId requester) {
  enclave_->ChargeEcall();
  if (recovering_) {
    return std::nullopt;  // A recovering node must not answer recovery requests.
  }
  if (request.sig.signer != requester) {
    return std::nullopt;
  }
  enclave_->ChargeVerify(1);
  const Bytes digest = request.Digest(kAchReq);
  if (!enclave_->Verify(request.sig, ByteView(digest.data(), digest.size()))) {
    return std::nullopt;
  }
  SignedCert reply;
  reply.hash = preph_;
  reply.view = prepv_;
  reply.aux = vi_;
  reply.aux2 = request.aux;  // Echo the nonce.
  enclave_->ChargeSign();
  const Bytes rpy_digest = reply.Digest(AchRpyDomain(requester));
  reply.sig = enclave_->Sign(ByteView(rpy_digest.data(), rpy_digest.size()));
  return reply;
}

std::optional<SignedCert> AchillesChecker::TeeRecover(const SignedCert& leader_reply,
                                                      const std::vector<SignedCert>& replies) {
  enclave_->ChargeEcall();
  if (!recovering_ || !nonce_armed_ || replies.size() < static_cast<size_t>(f_) + 1) {
    return std::nullopt;
  }
  const NodeId self = enclave_->platform().node_id();
  const std::string domain = AchRpyDomain(self);
  enclave_->ChargeVerifyBatch(replies.size());
  std::vector<NodeId> seen;
  bool leader_in_set = false;
  for (const SignedCert& reply : replies) {
    if (!break_nonce_check_ && reply.aux2 != expected_nonce_) {
      return std::nullopt;  // Stale or replayed reply.
    }
    const Bytes digest = reply.Digest(domain);
    if (!enclave_->Verify(reply.sig, ByteView(digest.data(), digest.size()))) {
      return std::nullopt;
    }
    for (NodeId s : seen) {
      if (s == reply.sig.signer) {
        return std::nullopt;
      }
    }
    seen.push_back(reply.sig.signer);
    if (reply.aux > leader_reply.aux) {
      return std::nullopt;  // leader_reply must carry the highest current view.
    }
    if (reply.sig.signer == leader_reply.sig.signer && reply.aux == leader_reply.aux &&
        reply.hash == leader_reply.hash && reply.view == leader_reply.view) {
      leader_in_set = true;
    }
  }
  if (!leader_in_set) {
    return std::nullopt;
  }
  // The highest-view reply must come from that view's leader — otherwise a Byzantine
  // schedule can erase a committed block (the §4.5 five-node attack).
  const View leader_view = leader_reply.aux;
  if (leader_reply.sig.signer != LeaderOfView(leader_view, n_)) {
    return std::nullopt;
  }
  // Jump two views ahead: the node may have sent messages in leader_view and — through the
  // NEW-VIEW optimization — in leader_view + 1 before it crashed, so both are burned.
  vi_ = leader_view + 2;
  flag_ = false;
  prepv_ = leader_reply.view;
  preph_ = leader_reply.hash;
  recovering_ = false;
  nonce_armed_ = false;
  RecordStateUpdate();
  return MakeCert(kAchNewView, preph_, prepv_, /*aux=*/vi_);
}

}  // namespace achilles
