#include "src/achilles/replica.h"

#include <algorithm>

namespace achilles {

namespace {
// Certificates collected per view are bounded by n; collections for old views are pruned
// lazily against this horizon to keep long runs memory-stable.
constexpr View kPruneHorizon = 8;

template <typename MapT>
void PruneBelow(MapT& map, View horizon) {
  while (!map.empty() && map.begin()->first + kPruneHorizon < horizon) {
    map.erase(map.begin());
  }
}
}  // namespace

AchillesReplica::AchillesReplica(const ReplicaContext& ctx, bool initial_launch)
    : ReplicaBase(ctx),
      checker_(&enclave(), ctx.params.n, ctx.params.f, initial_launch,
               ctx.params.break_recovery_nonce) {
  preb_.block = Block::Genesis();
  if (!initial_launch) {
    // Seed the committed prefix from the last stable checkpoint (if its snapshot and
    // sealed certificate agree): recovery then backfills from the boundary, not genesis.
    RestoreStableCheckpoint();
  }
}

void AchillesReplica::OnStart() {
  if (checker_.recovering()) {
    JournalEvent(obs::JournalKind::kRecoveryEnter, checker_.vi());
    StartRecoveryRound();
    return;
  }
  if (checker_.vi() > 0) {
    // Reboot with a fresh storage restore (quorum defense backend): the trusted state
    // survived intact, so skip Algorithm 3 and rejoin directly — burn one view past the
    // restored one, since messages may already have been sent there before the crash.
    cur_view_ = checker_.vi();
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
    AdvanceViaTeeView(checker_.vi() + 1);
    return;
  }
  // Genesis bootstrap: every node enters view 1 and reports its (empty) state to leader(1).
  AdvanceViaTeeView(1);
}

void AchillesReplica::HandleMessage(NodeId from, const MessageRef& msg) {
  if (auto propose = std::dynamic_pointer_cast<const AchProposeMsg>(msg)) {
    OnPropose(from, propose);
  } else if (auto vote = std::dynamic_pointer_cast<const AchVoteMsg>(msg)) {
    OnVote(*vote);
  } else if (auto decide = std::dynamic_pointer_cast<const AchDecideMsg>(msg)) {
    OnDecide(from, decide);
  } else if (auto nv = std::dynamic_pointer_cast<const AchNewViewMsg>(msg)) {
    OnNewView(*nv);
  } else if (auto req = std::dynamic_pointer_cast<const AchRecoveryRequestMsg>(msg)) {
    OnRecoveryRequest(from, *req);
  } else if (auto rpy = std::dynamic_pointer_cast<const AchRecoveryReplyMsg>(msg)) {
    OnRecoveryReply(from, *rpy);
  }
}

// --- View transitions ---

void AchillesReplica::AdvanceViaTeeView(View target) {
  const auto cert = checker_.TeeView(target);
  if (!cert) {
    return;
  }
  if (target > cur_view_) {
    cur_view_ = target;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  ArmViewTimer(cur_view_, consecutive_timeouts_);
  auto msg = std::make_shared<AchNewViewMsg>();
  msg->view_cert = *cert;
  SendTo(LeaderOf(target), msg);
}

void AchillesReplica::OnViewTimeout(View view) {
  if (checker_.recovering() || view != cur_view_) {
    return;
  }
  ++consecutive_timeouts_;
  AdvanceViaTeeView(cur_view_ + 1);
}

void AchillesReplica::EnterViewAfterCommit(View new_view,
                                           const std::shared_ptr<const AchDecideMsg>& decide) {
  if (new_view <= cur_view_) {
    return;
  }
  cur_view_ = new_view;
  JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);
  if (!params().commit_fast_path) {
    // Ablation: fall back to the NEW-VIEW collection for every view.
    AdvanceViaTeeView(new_view);
    return;
  }
  // NEW-VIEW optimization: hand the commitment certificate to the new leader instead of a
  // NEW-VIEW certificate. Self-addressed copies short-circuit locally below.
  const NodeId next_leader = LeaderOf(new_view);
  if (next_leader == id()) {
    commit_certs_[new_view] = decide->commit_cert;
    TryProposeFromCommit(new_view);
  } else {
    SendTo(next_leader, decide);
  }
}

// --- Normal case: proposals ---

void AchillesReplica::TryProposeFromCommit(View w) {
  if (checker_.recovering() || LeaderOf(w) != id() || w < cur_view_ ||
      proposed_hash_.count(w) > 0) {
    return;
  }
  auto it = commit_certs_.find(w);
  if (it == commit_certs_.end()) {
    return;
  }
  const QuorumCert& cert = it->second;
  if (!EnsureAncestry(cert.hash, LeaderOf(cert.view))) {
    return;  // Sync will retry via OnBlocksSynced.
  }
  const BlockPtr parent = store_.Get(cert.hash);
  BuildAndBroadcastProposal(w, parent, /*acc=*/nullptr, &cert);
}

void AchillesReplica::TryProposeFromViewCerts(View w) {
  if (checker_.recovering() || LeaderOf(w) != id() || w < cur_view_ ||
      proposed_hash_.count(w) > 0) {
    return;
  }
  auto it = view_certs_.find(w);
  if (it == view_certs_.end() || it->second.size() < quorum()) {
    return;
  }
  // Join the view in the trusted component if the pacemaker hasn't got us there yet; our
  // own NEW-VIEW certificate (sent to ourselves) will land in the collection too, but the
  // quorum check above already passed without it.
  if (checker_.vi() < w) {
    AdvanceViaTeeView(w);
    if (checker_.vi() != w) {
      return;
    }
  }
  // The freshest stored block among the certificates must be locally available before we
  // can extend it.
  const SignedCert* best = nullptr;
  for (const SignedCert& cert : it->second) {
    if (best == nullptr || cert.view > best->view) {
      best = &cert;
    }
  }
  if (!EnsureAncestry(best->hash, best->sig.signer)) {
    return;
  }
  const BlockPtr parent = store_.Get(best->hash);
  const auto acc = checker_.TeeAccum(it->second);
  if (!acc) {
    return;
  }
  BuildAndBroadcastProposal(w, parent, &*acc, /*commit_cert=*/nullptr);
}

void AchillesReplica::BuildAndBroadcastProposal(View w, const BlockPtr& parent,
                                                const AccumulatorCert* acc,
                                                const QuorumCert* commit_cert) {
  std::vector<Transaction> batch = mempool_.TakeBatch(params().batch_size);
  // executeTx + createLeaf: hash the batch and execute it against the parent state.
  ChargeExecute(batch.size());
  const BlockPtr block = Block::Create(w, parent, std::move(batch), LocalNow());
  ChargeHashBytes(block->WireSize());

  std::optional<SignedCert> block_cert;
  if (acc != nullptr) {
    block_cert = checker_.TeePrepare(*block, *acc);
  } else {
    block_cert = checker_.TeePrepare(*block, *commit_cert);
  }
  if (!block_cert) {
    return;
  }
  if (w > cur_view_) {
    cur_view_ = w;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  proposed_hash_[w] = block->hash;
  store_.Add(block);
  MarkProposed(block);
  PruneBelow(proposed_hash_, cur_view_);
  PruneBelow(view_certs_, cur_view_);
  PruneBelow(store_votes_, cur_view_);
  PruneBelow(commit_certs_, cur_view_);

  auto msg = std::make_shared<AchProposeMsg>();
  msg->block = block;
  msg->block_cert = *block_cert;
  BroadcastToReplicas(msg, /*include_self=*/true);
}

// --- Normal case: store + vote ---

void AchillesReplica::OnPropose(NodeId from,
                                const std::shared_ptr<const AchProposeMsg>& msg) {
  if (checker_.recovering() || msg->block == nullptr) {
    return;
  }
  const View v = msg->block_cert.view;
  if (v < checker_.vi() || msg->block->hash != msg->block_cert.hash ||
      msg->block->view != v) {
    return;
  }
  if (!AcceptBlock(msg->block)) {
    return;  // Failed integrity validation.
  }
  if (!EnsureAncestry(msg->block->hash, from)) {
    pending_proposals_.emplace_back(from, msg);
    return;
  }
  const auto store_cert = checker_.TeeStore(msg->block_cert);
  if (!store_cert) {
    return;
  }
  if (preb_.block == nullptr || msg->block->view >= preb_.block->view) {
    preb_ = StoredBlock{msg->block, msg->block_cert, QuorumCert{}};
  }
  if (v > cur_view_) {
    cur_view_ = v;
    JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  }
  consecutive_timeouts_ = 0;
  ArmViewTimer(cur_view_, 0);  // Progress: reset the pacemaker.

  auto vote = std::make_shared<AchVoteMsg>();
  vote->store_cert = *store_cert;
  SendTo(LeaderOf(v), vote);
}

void AchillesReplica::OnVote(const AchVoteMsg& msg) {
  if (checker_.recovering()) {
    return;
  }
  const View v = msg.store_cert.view;
  if (LeaderOf(v) != id() || v > cur_view_ + 1 || highest_decided_ >= v) {
    return;
  }
  auto proposed = proposed_hash_.find(v);
  if (proposed == proposed_hash_.end() || msg.store_cert.hash != proposed->second) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.store_cert.Digest(kAchCommit);
  if (!platform().suite().Verify(msg.store_cert.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& votes = store_votes_[v];
  for (const SignedCert& existing : votes) {
    if (existing.sig.signer == msg.store_cert.sig.signer) {
      return;
    }
  }
  votes.push_back(msg.store_cert);
  CritNote(0, v);
  if (votes.size() < quorum()) {
    return;
  }
  CritJoin(0, v);
  highest_decided_ = v;
  auto decide = std::make_shared<AchDecideMsg>();
  decide->commit_cert.hash = proposed->second;
  decide->commit_cert.view = v;
  for (const SignedCert& vote : votes) {
    decide->commit_cert.sigs.push_back(vote.sig);
  }
  BroadcastToReplicas(decide, /*include_self=*/true);
}

// --- Normal case: decide + chained commit ---

void AchillesReplica::OnDecide(NodeId from, const std::shared_ptr<const AchDecideMsg>& msg) {
  if (checker_.recovering()) {
    return;
  }
  const QuorumCert& cert = msg->commit_cert;
  BlockPtr block = store_.Get(cert.hash);
  if (block != nullptr && block->height <= last_committed_height_) {
    return;  // Duplicate decide for an already-committed block.
  }
  ChargeVerifyBatch(cert.sigs.size());
  if (!cert.Verify(platform().suite(), kAchCommit, quorum())) {
    return;
  }
  if (block == nullptr) {
    pending_decides_.emplace_back(from, msg);
    RequestBlock(from, cert.hash);
    return;
  }
  if (!EnsureAncestry(cert.hash, from) &&
      block->height <= last_committed_height_ + 64) {
    // A small gap: wait for sync. (A deep gap falls through to checkpoint adoption in
    // CommitChain — state transfer instead of replay.)
    pending_decides_.emplace_back(from, msg);
    return;
  }
  // Record the freshest certificates for recovery replies.
  if (preb_.block != nullptr && preb_.block->hash == cert.hash) {
    preb_.commit_cert = cert;
  } else if (preb_.block == nullptr || block->view > preb_.block->view) {
    preb_ = StoredBlock{block, SignedCert{}, cert};
  }
  CommitChain(block, cert.WireSize());
  if (latest_committed_.block == nullptr || block->view > latest_committed_.block->view) {
    latest_committed_ = StoredBlock{block, SignedCert{}, cert};
  }
  // As the (possibly future) leader, remember the justification for view v+1.
  if (params().commit_fast_path && LeaderOf(cert.view + 1) == id()) {
    commit_certs_[cert.view + 1] = cert;
    TryProposeFromCommit(cert.view + 1);
  }
  EnterViewAfterCommit(cert.view + 1, msg);
}

// --- NEW-VIEW collection (leader) ---

void AchillesReplica::OnNewView(const AchNewViewMsg& msg) {
  if (checker_.recovering()) {
    return;
  }
  const View w = msg.view_cert.aux;  // Certificate's target view.
  if (LeaderOf(w) != id() || w + kPruneHorizon < cur_view_ || proposed_hash_.count(w) > 0) {
    return;
  }
  ChargeVerifyPlain(1);
  const Bytes digest = msg.view_cert.Digest(kAchNewView);
  if (!platform().suite().Verify(msg.view_cert.sig, ByteView(digest.data(), digest.size()))) {
    return;
  }
  std::vector<SignedCert>& certs = view_certs_[w];
  for (const SignedCert& existing : certs) {
    if (existing.sig.signer == msg.view_cert.sig.signer) {
      return;
    }
  }
  certs.push_back(msg.view_cert);
  TryProposeFromViewCerts(w);
}

// --- Recovery ---

void AchillesReplica::StartRecoveryRound() {
  const auto request = checker_.TeeRequest();
  if (!request) {
    return;
  }
  recovery_replies_.clear();
  reply_source_.clear();
  last_request_nonce_ = request->aux;
  JournalEvent(obs::JournalKind::kRecoveryRound, request->aux);
  auto msg = std::make_shared<AchRecoveryRequestMsg>();
  msg->request = *request;
  BroadcastToReplicas(msg, /*include_self=*/false);
  // Retry with a fresh nonce if the round cannot complete (e.g. the highest-view reply is
  // not from that view's leader yet — §4.5: wait for the next leader). Rounds are cheap
  // (one small message per peer), so retry every few RTTs rather than a full view timeout.
  const SimDuration retry = std::max<SimDuration>(Ms(2), params().base_timeout / 20);
  host().SetTimer(retry, [this] {
    if (checker_.recovering()) {
      StartRecoveryRound();
    }
  });
}

void AchillesReplica::OnRecoveryRequest(NodeId from, const AchRecoveryRequestMsg& msg) {
  const auto reply = checker_.TeeReply(msg.request, from);
  if (!reply) {
    return;
  }
  auto out = std::make_shared<AchRecoveryReplyMsg>();
  out->reply = *reply;
  out->block = preb_.block;
  out->block_cert = preb_.block_cert;
  out->commit_cert = preb_.commit_cert;
  out->committed_block = latest_committed_.block;
  out->committed_cert = latest_committed_.commit_cert;
  SendTo(from, out);
}

void AchillesReplica::OnRecoveryReply(NodeId from, const AchRecoveryReplyMsg& msg) {
  if (!checker_.recovering() ||
      (!params().break_recovery_nonce && msg.reply.aux2 != last_request_nonce_)) {
    return;  // Not recovering, or a reply from a superseded request round.
  }
  if (msg.block != nullptr) {
    AcceptBlock(msg.block);
    recovered_certs_[msg.block->hash] = RecoveredCerts{msg.block_cert, msg.commit_cert};
  }
  if (msg.committed_block != nullptr && !msg.committed_cert.empty()) {
    AcceptBlock(msg.committed_block);
    // Keep the highest *verified* certified checkpoint for state transfer.
    if (best_recovery_checkpoint_.block == nullptr ||
        msg.committed_block->height > best_recovery_checkpoint_.block->height) {
      ChargeVerifyBatch(msg.committed_cert.sigs.size());
      if (msg.committed_cert.hash == msg.committed_block->hash &&
          msg.committed_cert.Verify(platform().suite(), kAchCommit, quorum())) {
        best_recovery_checkpoint_ =
            StoredBlock{msg.committed_block, SignedCert{}, msg.committed_cert};
      }
    }
  }
  for (const SignedCert& existing : recovery_replies_) {
    if (existing.sig.signer == msg.reply.sig.signer) {
      return;
    }
  }
  ChargeVerifyPlain(1);
  recovery_replies_.push_back(msg.reply);
  reply_source_[msg.reply.sig.signer] = from;
  TryFinishRecovery();
}

void AchillesReplica::TryFinishRecovery() {
  if (!checker_.recovering() || recovery_replies_.size() < quorum()) {
    return;
  }
  // Find the highest current view among the replies; several replies usually tie (all
  // correct nodes that stored the same proposal report the same vi), so among the ties we
  // must pick the one signed by that view's leader — the checker enforces exactly this.
  View max_view = 0;
  for (const SignedCert& reply : recovery_replies_) {
    max_view = std::max<View>(max_view, reply.aux);
  }
  const SignedCert* leader_reply = nullptr;
  for (const SignedCert& reply : recovery_replies_) {
    if (reply.aux == max_view && reply.sig.signer == LeaderOfView(max_view, n())) {
      leader_reply = &reply;
      break;
    }
  }
  if (leader_reply == nullptr) {
    return;  // Wait for more replies (or the retry round).
  }
  const BlockPtr recovered = store_.Get(leader_reply->hash);
  if (recovered == nullptr) {
    auto src = reply_source_.find(leader_reply->sig.signer);
    if (src != reply_source_.end()) {
      RequestBlock(src->second, leader_reply->hash);
    }
    return;
  }
  const auto view_cert = checker_.TeeRecover(*leader_reply, recovery_replies_);
  if (!view_cert) {
    return;
  }
  recovery_completed_at_ = LocalNow();
  recovery_completed_nonce_ = leader_reply->aux2;
  cur_view_ = checker_.vi();
  // a = nonce echoed by the accepted round, b = the view recovery lands in. Forensics
  // compares a against the last kRecoveryRound nonce to detect a stale-round acceptance.
  JournalEvent(obs::JournalKind::kRecoveryExit, leader_reply->aux2, cur_view_);
  JournalEvent(obs::JournalKind::kViewEnter, cur_view_);
  consecutive_timeouts_ = 0;
  // State transfer: adopt the best certified committed checkpoint from the replies.
  if (best_recovery_checkpoint_.block != nullptr) {
    AdoptCheckpoint(best_recovery_checkpoint_.block,
                    best_recovery_checkpoint_.commit_cert.WireSize());
    latest_committed_ = best_recovery_checkpoint_;
  }
  preb_.block = recovered;
  auto certs = recovered_certs_.find(recovered->hash);
  if (certs != recovered_certs_.end()) {
    preb_.block_cert = certs->second.block_cert;
    preb_.commit_cert = certs->second.commit_cert;
    if (!certs->second.commit_cert.empty()) {
      CommitChain(recovered, certs->second.commit_cert.WireSize());
      if (latest_committed_.block == nullptr ||
          recovered->view > latest_committed_.block->view) {
        latest_committed_ = StoredBlock{recovered, SignedCert{}, certs->second.commit_cert};
      }
    }
  } else {
    preb_.block_cert = SignedCert{};
    preb_.commit_cert = QuorumCert{};
  }
  recovery_replies_.clear();
  recovered_certs_.clear();
  best_recovery_checkpoint_ = StoredBlock{};
  ArmViewTimer(cur_view_, 0);
  auto msg = std::make_shared<AchNewViewMsg>();
  msg->view_cert = *view_cert;
  SendTo(LeaderOf(cur_view_), msg);
}

void AchillesReplica::OnBlocksSynced() {
  auto proposals = std::move(pending_proposals_);
  pending_proposals_.clear();
  for (auto& [from, msg] : proposals) {
    OnPropose(from, msg);
  }
  auto decides = std::move(pending_decides_);
  pending_decides_.clear();
  for (auto& [from, msg] : decides) {
    OnDecide(from, msg);
  }
  TryProposeFromCommit(cur_view_);
  TryProposeFromViewCerts(cur_view_);
  TryFinishRecovery();
}

}  // namespace achilles
