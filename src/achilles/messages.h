// Wire messages of the Achilles protocol (normal case + recovery).
#ifndef SRC_ACHILLES_MESSAGES_H_
#define SRC_ACHILLES_MESSAGES_H_

#include "src/consensus/certificates.h"
#include "src/sim/process.h"

namespace achilles {

// Leader -> all: ⟨b, φ_b⟩. The block certificate from the leader's CHECKER is the whole
// justification — backups need no quorum certificate because TEEprepare already enforced
// the parent-selection rules (this is what removes Damysus' PREPARE phase).
struct AchProposeMsg : SimMessage {
  const char* TraceName() const override { return "ach_propose"; }
  BlockPtr block;
  SignedCert block_cert;

  size_t WireSize() const override { return block->WireSize() + block_cert.WireSize(); }
};

// Backup -> leader: store certificate φ_s.
struct AchVoteMsg : SimMessage {
  const char* TraceName() const override { return "ach_vote"; }
  SignedCert store_cert;

  size_t WireSize() const override { return store_cert.WireSize(); }
};

// Leader -> all (and every node -> next leader): commitment certificate φ_c.
struct AchDecideMsg : SimMessage {
  const char* TraceName() const override { return "ach_decide"; }
  QuorumCert commit_cert;

  size_t WireSize() const override { return commit_cert.WireSize(); }
};

// Node -> leader of the new view: φ_v.
struct AchNewViewMsg : SimMessage {
  const char* TraceName() const override { return "ach_new_view"; }
  SignedCert view_cert;

  size_t WireSize() const override { return view_cert.WireSize(); }
};

// Recovering node -> all: ⟨REQ, nonce⟩.
struct AchRecoveryRequestMsg : SimMessage {
  const char* TraceName() const override { return "ach_recovery_req"; }
  SignedCert request;

  size_t WireSize() const override { return request.WireSize(); }
};

// Peer -> recovering node: reply certificate plus the latest stored block and its
// certificates (Algorithm 3 step 2).
struct AchRecoveryReplyMsg : SimMessage {
  const char* TraceName() const override { return "ach_recovery_reply"; }
  SignedCert reply;
  BlockPtr block;           // May be genesis.
  SignedCert block_cert;    // φ_b for `block` (may be empty if unknown).
  QuorumCert commit_cert;   // φ_c for `block` (may be empty if not yet committed).
  // State transfer: the replier's latest committed block with its commitment certificate,
  // so the recovering node can adopt a certified checkpoint instead of replaying history.
  BlockPtr committed_block;
  QuorumCert committed_cert;

  size_t WireSize() const override {
    return reply.WireSize() + (block != nullptr ? block->WireSize() : 0) +
           block_cert.WireSize() + commit_cert.WireSize() +
           (committed_block != nullptr ? committed_block->WireSize() : 0) +
           committed_cert.WireSize();
  }
};

}  // namespace achilles

#endif  // SRC_ACHILLES_MESSAGES_H_
