// Achilles' trusted components (paper §4.3, Algorithms 2 and 3): the CHECKER, which binds
// one proposal / one store certificate to each view and remembers the latest stored block
// (prepared or not), and the ACCUMULATOR, which forces a new leader to extend the freshest
// stored block among f+1 NEW-VIEW certificates. Both run inside the (simulated) enclave and
// share state; only the CHECKER state needs recovery after a reboot.
//
// Unlike Damysus-R/OneShot-R, none of these functions touches a persistent counter: state
// freshness after reboot comes from the rollback-resilient recovery (TeeRequest / TeeReply /
// TeeRecover), not from local storage. Under a quorum rollback-defense backend
// (--defense rollbaccine/healer; src/storage/defense.h) the checker additionally persists
// its snapshot through the backend and tries a storage restore on reboot, so the paper's
// network recovery can be raced head-to-head against storage-level defenses.
#ifndef SRC_ACHILLES_CHECKER_H_
#define SRC_ACHILLES_CHECKER_H_

#include <optional>
#include <vector>

#include "src/consensus/certificates.h"
#include "src/consensus/types.h"
#include "src/storage/persist.h"
#include "src/tee/enclave.h"

namespace achilles {

// Signing domains (certificate kinds).
inline constexpr const char* kAchProp = "achilles/PROP";
// Store certificates; a commitment certificate is f+1 store-certificate signatures over the
// same ⟨COMMIT, h, v⟩ tuple, so it verifies under this same domain.
inline constexpr const char* kAchCommit = "achilles/COMMIT";
inline constexpr const char* kAchNewView = "achilles/NEW-VIEW";
inline constexpr const char* kAchAcc = "achilles/ACC";
inline constexpr const char* kAchReq = "achilles/REQ";
// Recovery replies bind the requester id into the domain: "achilles/RPY/<requester>".
std::string AchRpyDomain(NodeId requester);

// SignedCert field mapping used by this protocol:
//   PROP:      hash = block hash,  view = proposal view.
//   COMMIT:    hash = block hash,  view = block view.
//   NEW-VIEW:  hash = preph,       view = prepv,        aux = current view v'.
//   REQ:       hash = 0,           view = 0,            aux = nonce.
//   RPY:       hash = preph,       view = prepv,        aux = replier's vi,  aux2 = nonce.

class AchillesChecker {
 public:
  // `initial_launch` is true only at the cluster genesis ceremony: the enclave starts
  // active at view 0. Every later (re)boot starts in recovering state and must complete
  // TeeRecover before any other function works. `break_nonce_check` disables the reply
  // freshness check — a deliberately-broken variant that exists solely so the chaos
  // harness can prove its oracles catch the resulting stale-reply recovery.
  AchillesChecker(EnclaveRuntime* enclave, uint32_t n, uint32_t f, bool initial_launch,
                  bool break_nonce_check = false);

  bool recovering() const { return recovering_; }
  View vi() const { return vi_; }
  bool proposed_flag() const { return flag_; }
  View prepv() const { return prepv_; }
  const Hash256& preph() const { return preph_; }
  // Backend-assigned state version; stays 0 under the local backend (volatile store).
  uint64_t version() const { return version_; }

  // --- Normal-case operations (Algorithm 2) ---

  // TEEprepare, accumulator path: certify block `b` extending the block selected by `acc`.
  // Requires flag == 0, acc produced for the current view, and b.parent == acc.hash.
  std::optional<SignedCert> TeePrepare(const Block& b, const AccumulatorCert& acc);

  // TEEprepare, commitment-certificate path (NEW-VIEW optimization): certify block `b`
  // extending the block committed at view `cert.view`; advances vi to cert.view + 1.
  std::optional<SignedCert> TeePrepare(const Block& b, const QuorumCert& commit_cert);

  // TEEstore: validate the leader's block certificate and record (prepv, preph); returns the
  // store certificate. Advancing past the certificate's view resets the proposal flag.
  std::optional<SignedCert> TeeStore(const SignedCert& block_cert);

  // TEEaccum: given >= f+1 NEW-VIEW certificates for the current view, pick the one with the
  // highest stored-block view and attest to it.
  std::optional<AccumulatorCert> TeeAccum(const std::vector<SignedCert>& view_certs);

  // TEEview: jump to `target` (> vi), abandoning all lower views; returns the NEW-VIEW
  // certificate for `target`. (The paper's TEEview does vi++; the jump form is equivalent to
  // calling it repeatedly and keeps the trusted view aligned with the pacemaker.)
  std::optional<SignedCert> TeeView(View target);

  // --- Rollback-resilient recovery (Algorithm 3) ---

  // TEErequest: only callable while recovering; issues a fresh nonce.
  std::optional<SignedCert> TeeRequest();

  // TEEreply: answer a recovering peer; refuses while recovering ourselves.
  std::optional<SignedCert> TeeReply(const SignedCert& request, NodeId requester);

  // TEErecover: install the state from `leader_reply` given f+1 matching replies. The reply
  // with the highest current view must be `leader_reply`, and it must be signed by the
  // leader of that view (the paper's key rule; see the 5-node attack in §4.5). On success
  // the view jumps to leader_view + 2 and the NEW-VIEW certificate for it is returned.
  std::optional<SignedCert> TeeRecover(const SignedCert& leader_reply,
                                       const std::vector<SignedCert>& replies);

  // Statistics: how many trusted invocations mutated state (≈ where a persistent counter
  // write would sit in a counter-based design).
  uint64_t state_updates() const { return state_updates_; }

 private:
  SignedCert MakeCert(const char* domain, const Hash256& hash, View view, uint64_t aux = 0,
                      uint64_t aux2 = 0);

  // Books one state mutation through the checker's persist::Store. Achilles deliberately
  // buys Durability::kVolatile here — where Damysus-R pays a counter write and a CFT
  // protocol pays an fsync, Achilles persists nothing and relies on Algorithm 3 recovery.
  void RecordStateUpdate();

  EnclaveRuntime* enclave_;
  uint32_t n_;
  uint32_t f_;

  bool recovering_;
  View vi_ = 0;
  bool flag_ = false;
  View prepv_ = 0;
  Hash256 preph_;
  uint64_t expected_nonce_ = 0;
  bool nonce_armed_ = false;
  bool break_nonce_check_ = false;  // Broken variant (oracle self-test); see constructor.
  persist::VolatileStore state_store_;  // Explicitly volatile; dies with the enclave.
  uint64_t state_updates_ = 0;
  uint64_t version_ = 0;  // Defense-backend version (0 under --defense local).
};

}  // namespace achilles

#endif  // SRC_ACHILLES_CHECKER_H_
